// Package pipeline implements the SCCG system framework (paper §4): a
// four-stage execution pipeline — parser, builder, filter, aggregator —
// connected by bounded work buffers, with dynamic task migration between
// CPUs and GPUs driven by the aggregator input buffer's full/empty
// transitions (§4.2).
//
// Tasks are defined at image-tile granularity: a parser task is the two
// polygon files segmented from one tile; a builder task indexes the two
// parsed polygon sets; a filter task joins the two indexes into an array of
// MBR-intersecting polygon pairs; the aggregator batches pair arrays and
// computes areas with PixelBox.
//
// The aggregator is a hybrid executor pool (see hybrid.go): N simulated GPU
// devices and M PixelBox-CPU workers co-execute, stealing pair batches from
// the shared aggregator input buffer under a cost-model-driven policy that
// generalises the paper's buffer-pressure migration heuristic. Because
// PixelBox areas are exact integer pixel counts and Jaccard ratios are
// accumulated per tile in canonical order, the reported similarity is
// bit-identical no matter which executors computed which tiles.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/pixelbox"
	"repro/internal/rtree"
)

// FileTask is the pipeline input: the raw text polygon files of one tile's
// two result sets.
type FileTask struct {
	Image string
	Tile  int
	RawA  []byte
	RawB  []byte
}

// PolyTask is the pre-parsed pipeline input: one tile's two result sets as
// decoded polygon slices. Stored datasets, whose WKB records were fully
// validated at ingest, enter through RunParsed with PolyTasks and skip the
// parser stage entirely — the polygons are the same values text parsing
// would produce, so the report stays bit-identical to the FileTask path.
type PolyTask struct {
	Image string
	Tile  int
	A, B  []*geom.Polygon
}

// parsedTask is the parser stage output.
type parsedTask struct {
	image string
	tile  int
	a, b  []*geom.Polygon
}

// builtTask is the builder stage output: parsed polygons plus their
// Hilbert R-tree indexes.
type builtTask struct {
	parsedTask
	ta, tb *rtree.Tree
}

// pairTask is the filter stage output and the aggregator's input.
type pairTask struct {
	image string
	tile  int
	pairs []pixelbox.Pair
}

// Config wires a pipeline run.
type Config struct {
	// ParserWorkers is the parser stage's CPU thread count (the stage
	// "executes on CPUs with multiple worker threads"); defaults to 2.
	ParserWorkers int
	// BufferCap is the capacity of each inter-stage buffer in tasks;
	// defaults to 8.
	BufferCap int
	// BatchPairs is the aggregator's batching target: an executor groups
	// buffered tasks until its claim target (derived from this value by the
	// stealing policy) is in hand before launching a kernel (GPU input data
	// batching, §4.1); defaults to 1024.
	BatchPairs int
	// Device is a single GPU for the aggregator (the original single-device
	// form). It is folded into Devices during normalization.
	Device *gpu.Device
	// Devices is the simulated GPU set the hybrid aggregator drives, one
	// executor goroutine per device (each device stays an exclusively-owned,
	// non-preemptive client, §4.1). Empty means no GPU executors.
	Devices []*gpu.Device
	// CPUAggregators is the number of PixelBox-CPU executors co-executing
	// with the GPU executors in the hybrid aggregator. When no devices are
	// configured, one CPU aggregator always runs (using CPU.Workers
	// goroutines) so the pipeline degrades to PixelBox-CPU exactly as
	// before.
	CPUAggregators int
	// PixelBox configures the GPU kernel.
	PixelBox pixelbox.Config
	// CPU configures PixelBox-CPU for CPU executors and migrated tasks.
	CPU pixelbox.CPUConfig
	// Migration enables the dynamic task migration component (§4.2).
	Migration bool
	// Registry, when set, receives per-executor accounting (batches, pairs,
	// measured throughput) under names labelled with ExecutorLabel+id.
	Registry *metrics.Registry
	// ExecutorLabel prefixes executor IDs in Registry metric labels, so
	// several pipelines (e.g. scheduler shards) stay distinguishable.
	ExecutorLabel string
	// Warmth, when set, seeds each executor's throughput EWMA from its
	// remembered measurement (keyed by ExecutorLabel+id) and records the
	// final measurement back after the run, so first claim sizes carry over
	// across jobs instead of resetting to the static priors.
	Warmth *ThroughputMemory
}

func (c Config) normalized() Config {
	if c.ParserWorkers <= 0 {
		c.ParserWorkers = 2
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 8
	}
	if c.BatchPairs <= 0 {
		c.BatchPairs = 1024
	}
	if c.Device != nil {
		c.Devices = append([]*gpu.Device{c.Device}, c.Devices...)
		c.Device = nil
	}
	if c.CPUAggregators < 0 {
		c.CPUAggregators = 0
	}
	if len(c.Devices) == 0 && c.CPUAggregators == 0 {
		c.CPUAggregators = 1
	}
	return c
}

// Stats reports what the pipeline did.
type Stats struct {
	TilesProcessed int
	PairsFiltered  int
	PairsOnGPU     int
	PairsOnCPU     int
	TasksToCPU     int64 // aggregator tasks migrated GPU -> CPU
	TasksToGPU     int64 // parser tasks migrated CPU -> GPU
	KernelLaunches int64
	DeviceSeconds  float64 // modelled GPU busy time
	WallTime       time.Duration
	ParserBusy     time.Duration
	BuilderBusy    time.Duration
	FilterBusy     time.Duration
	AggregatorBusy time.Duration
	// Executors is the per-executor accounting of the hybrid aggregator.
	Executors []ExecutorStats
}

// TileRatio is one tile's contribution to J': the tile's Jaccard ratio sum
// folded in pair order. Keeping per-tile partials lets any combination of
// runs and shards recompute the dataset similarity in one canonical order,
// making the result bit-identical across executor configurations.
type TileRatio struct {
	Image        string
	Tile         int
	RatioSum     float64
	Intersecting int
}

// Result is the cross-comparison outcome for one image's two result sets.
type Result struct {
	// Similarity is J' (Eq. 1) aggregated over all tiles.
	Similarity float64
	// RatioSum is the raw sum of per-pair Jaccard ratios (the numerator of
	// J'), folded over TileRatios in canonical tile order.
	RatioSum float64
	// Intersecting and Candidates count truly-intersecting and
	// MBR-intersecting pairs.
	Intersecting int
	Candidates   int
	// TileRatios holds the per-tile partial sums in canonical (image, tile)
	// order; Merge uses them to keep shard merging bit-exact.
	TileRatios []TileRatio
	Stats      Stats
}

// Merge combines the results of several pipeline runs over disjoint tile
// shards of one comparison into the result a single run over the union would
// have produced. Similarity is recomputed from the per-tile ratio partials
// re-sorted into canonical order, so sharding changes neither the value nor
// the bits of the reported J'; wall time is the maximum across shards (they
// run concurrently), busy times and counters add.
func Merge(shards ...Result) Result {
	var m Result
	tileBased := true
	for _, s := range shards {
		if len(s.TileRatios) == 0 && (s.RatioSum != 0 || s.Intersecting != 0) {
			// A hand-built result without tile partials: fall back to
			// order-dependent summing for the whole merge.
			tileBased = false
		}
		m.Candidates += s.Candidates
		m.Stats.TilesProcessed += s.Stats.TilesProcessed
		m.Stats.PairsFiltered += s.Stats.PairsFiltered
		m.Stats.PairsOnGPU += s.Stats.PairsOnGPU
		m.Stats.PairsOnCPU += s.Stats.PairsOnCPU
		m.Stats.TasksToCPU += s.Stats.TasksToCPU
		m.Stats.TasksToGPU += s.Stats.TasksToGPU
		m.Stats.KernelLaunches += s.Stats.KernelLaunches
		m.Stats.DeviceSeconds += s.Stats.DeviceSeconds
		if s.Stats.WallTime > m.Stats.WallTime {
			m.Stats.WallTime = s.Stats.WallTime
		}
		m.Stats.ParserBusy += s.Stats.ParserBusy
		m.Stats.BuilderBusy += s.Stats.BuilderBusy
		m.Stats.FilterBusy += s.Stats.FilterBusy
		m.Stats.AggregatorBusy += s.Stats.AggregatorBusy
		m.Stats.Executors = append(m.Stats.Executors, s.Stats.Executors...)
	}
	if tileBased {
		for _, s := range shards {
			m.TileRatios = append(m.TileRatios, s.TileRatios...)
		}
		sortTileRatios(m.TileRatios)
		for _, tr := range m.TileRatios {
			m.RatioSum += tr.RatioSum
			m.Intersecting += tr.Intersecting
		}
	} else {
		for _, s := range shards {
			m.RatioSum += s.RatioSum
			m.Intersecting += s.Intersecting
		}
	}
	if m.Intersecting > 0 {
		m.Similarity = m.RatioSum / float64(m.Intersecting)
	}
	return m
}

func sortTileRatios(trs []TileRatio) {
	// Stable so that duplicate (image, tile) keys — which disjoint shards
	// never produce, but hand-built results might — keep their argument
	// order and the float fold stays deterministic.
	sort.SliceStable(trs, func(i, j int) bool {
		if trs[i].Image != trs[j].Image {
			return trs[i].Image < trs[j].Image
		}
		return trs[i].Tile < trs[j].Tile
	})
}

// EncodeDataset converts a generated dataset into pipeline input tasks
// (text-encoded tiles, as segmentation emits them).
func EncodeDataset(d *pathology.Dataset) []FileTask {
	tasks := make([]FileTask, len(d.Pairs))
	for i, tp := range d.Pairs {
		tasks[i] = FileTask{
			Image: tp.Image,
			Tile:  tp.Index,
			RawA:  parser.Encode(tp.A),
			RawB:  parser.Encode(tp.B),
		}
	}
	return tasks
}

// Run executes the full pipeline over tasks and returns the image
// similarity and execution statistics. It is safe to call concurrently with
// distinct Configs/devices.
func Run(tasks []FileTask, cfg Config) (Result, error) {
	cfg = cfg.normalized()
	p := &run{cfg: cfg}
	return p.execute(tasks, nil)
}

// RunParsed executes the pipeline over pre-parsed tile tasks, skipping the
// parser stage: tiles enter at the builder. The store's read path uses it so
// already-validated datasets never pay the text re-encode/re-parse cost.
// Nil polygons are rejected up front (text parsing can never produce them,
// so the later stages assume their absence).
func RunParsed(tasks []PolyTask, cfg Config) (Result, error) {
	for _, t := range tasks {
		for i, p := range t.A {
			if p == nil {
				return Result{}, fmt.Errorf("pipeline: tile %s/%d set A polygon %d is nil", t.Image, t.Tile, i)
			}
		}
		for i, p := range t.B {
			if p == nil {
				return Result{}, fmt.Errorf("pipeline: tile %s/%d set B polygon %d is nil", t.Image, t.Tile, i)
			}
		}
	}
	cfg = cfg.normalized()
	p := &run{cfg: cfg}
	return p.execute(nil, tasks)
}

// tileKey identifies one tile's accumulator.
type tileKey struct {
	image string
	tile  int
}

// tileAgg is one tile's ratio partial, folded in pair order by whichever
// executor processed the tile.
type tileAgg struct {
	ratioSum float64
	hits     int
}

// run carries one pipeline execution's shared state.
type run struct {
	cfg Config

	fileBuf   *buffer[FileTask]
	parsedBuf *buffer[parsedTask]
	builtBuf  *buffer[builtTask]
	pairBuf   *buffer[pairTask]

	executors []*executor

	mu         sync.Mutex
	tiles      map[tileKey]*tileAgg
	candidates int
	firstErr   error

	// pendingParse counts input tasks not yet pushed past the parser
	// stage; the parsed buffer closes when it reaches zero, which makes
	// parser workers and the parser migrator interchangeable producers.
	pendingParse int64

	stats Stats

	parserBusy, builderBusy, filterBusy, aggBusy int64 // atomic nanoseconds
	pairsGPU, pairsCPU                           int64
}

func (r *run) fail(err error) {
	r.mu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.mu.Unlock()
}

// accumulateTask folds one whole tile task's pair results into the tile's
// accumulator. The fold runs in the task's pair order and tasks never split
// tiles, so each tile's partial sum is independent of which executor
// computed it and of batch composition — the root of the pipeline's
// bit-exact determinism.
func (r *run) accumulateTask(t pairTask, results []pixelbox.AreaResult, onGPU bool) {
	var sum float64
	var hits int
	for _, ar := range results {
		if ratio, ok := ar.Ratio(); ok {
			sum += ratio
			hits++
		}
	}
	key := tileKey{image: t.image, tile: t.tile}
	r.mu.Lock()
	agg := r.tiles[key]
	if agg == nil {
		agg = &tileAgg{}
		r.tiles[key] = agg
	}
	agg.ratioSum += sum
	agg.hits += hits
	r.mu.Unlock()
	if onGPU {
		atomic.AddInt64(&r.pairsGPU, int64(len(results)))
	} else {
		atomic.AddInt64(&r.pairsCPU, int64(len(results)))
	}
}

func (r *run) execute(files []FileTask, parsed []PolyTask) (Result, error) {
	cfg := r.cfg
	r.fileBuf = newBuffer[FileTask](cfg.BufferCap)
	r.parsedBuf = newBuffer[parsedTask](cfg.BufferCap)
	r.builtBuf = newBuffer[builtTask](cfg.BufferCap)
	r.pairBuf = newBuffer[pairTask](cfg.BufferCap)
	r.tiles = make(map[tileKey]*tileAgg)
	r.executors = buildExecutors(cfg)

	total := len(files) + len(parsed)
	start := time.Now()
	done := make(chan struct{})

	var wg sync.WaitGroup

	// Stage 1: parser (multi-threaded). The parsed buffer closes when the
	// pending-task counter drains, not when the workers exit, because the
	// parser migrator and the pre-parsed feed below are alternative
	// producers.
	atomic.StoreInt64(&r.pendingParse, int64(total))
	if total == 0 {
		r.parsedBuf.close()
	}
	for w := 0; w < cfg.ParserWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.parserWorker()
		}()
	}

	// Stage 2: builder (single-threaded; "its execution speed is already
	// very fast").
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.builderWorker()
		r.builtBuf.close()
	}()

	// Stage 3: filter (single-threaded).
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.filterWorker()
		r.pairBuf.close()
	}()

	// Stage 4: aggregator — the hybrid executor pool. Each simulated GPU is
	// driven by exactly one goroutine (consolidated device access, §4.1);
	// CPU executors co-execute, all stealing from the shared pair buffer.
	for _, e := range r.executors {
		wg.Add(1)
		go func(e *executor) {
			defer wg.Done()
			r.executorWorker(e)
		}(e)
	}

	// Migration threads (§4.2): asleep until buffer transitions wake them.
	if cfg.Migration {
		wg.Add(2)
		go func() {
			defer wg.Done()
			r.aggregatorMigrator(done)
		}()
		go func() {
			defer wg.Done()
			r.parserMigrator(done)
		}()
	}

	// Feed the input and drain the pipeline. Pre-parsed tiles enter past the
	// parser stage; finishParseTask keeps the parsed buffer's close
	// accounting uniform across both feeds.
	for _, t := range parsed {
		r.parsedBuf.put(parsedTask{image: t.Image, tile: t.Tile, a: t.A, b: t.B})
		r.finishParseTask()
	}
	for _, t := range files {
		r.fileBuf.put(t)
	}
	r.fileBuf.close()

	// Wait for the aggregator (last stage) then stop migration workers.
	waitDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitDone)
	}()
	// The executors exit when pairBuf drains; done must be closed once the
	// main stages have all finished so migrators unblock.
	<-r.stageDone(done, waitDone)

	res := r.finalize(total, start)
	return res, r.firstErr
}

// finalize folds the per-tile partials in canonical order and assembles the
// result and statistics.
func (r *run) finalize(total int, start time.Time) Result {
	res := Result{TileRatios: make([]TileRatio, 0, len(r.tiles))}
	for key, agg := range r.tiles {
		res.TileRatios = append(res.TileRatios, TileRatio{
			Image:        key.image,
			Tile:         key.tile,
			RatioSum:     agg.ratioSum,
			Intersecting: agg.hits,
		})
	}
	sortTileRatios(res.TileRatios)
	for _, tr := range res.TileRatios {
		res.RatioSum += tr.RatioSum
		res.Intersecting += tr.Intersecting
	}
	res.Candidates = r.candidates
	if res.Intersecting > 0 {
		res.Similarity = res.RatioSum / float64(res.Intersecting)
	}
	r.stats.WallTime = time.Since(start)
	r.stats.PairsOnGPU = int(atomic.LoadInt64(&r.pairsGPU))
	r.stats.PairsOnCPU = int(atomic.LoadInt64(&r.pairsCPU))
	r.stats.PairsFiltered = r.stats.PairsOnGPU + r.stats.PairsOnCPU
	r.stats.TilesProcessed = total
	r.stats.ParserBusy = time.Duration(atomic.LoadInt64(&r.parserBusy))
	r.stats.BuilderBusy = time.Duration(atomic.LoadInt64(&r.builderBusy))
	r.stats.FilterBusy = time.Duration(atomic.LoadInt64(&r.filterBusy))
	r.stats.AggregatorBusy = time.Duration(atomic.LoadInt64(&r.aggBusy))
	for _, dev := range r.cfg.Devices {
		r.stats.KernelLaunches += dev.Launches()
		r.stats.DeviceSeconds += dev.BusySeconds()
	}
	for _, e := range r.executors {
		r.stats.Executors = append(r.stats.Executors, e.snapshot())
		// Only executors that actually processed a batch measured anything;
		// an idle executor must not overwrite its remembered throughput.
		if r.cfg.Warmth != nil && atomic.LoadInt64(&e.batches) > 0 {
			r.cfg.Warmth.Record(r.cfg.ExecutorLabel+e.id, e.throughput())
		}
	}
	r.publishMetrics()
	res.Stats = r.stats
	return res
}

// publishMetrics surfaces per-executor accounting through the configured
// metrics registry.
func (r *run) publishMetrics() {
	reg := r.cfg.Registry
	if reg == nil {
		return
	}
	for _, e := range r.executors {
		id := r.cfg.ExecutorLabel + e.id
		reg.Counter(metrics.Label("sccg_executor_batches_total", "executor", id)).Add(atomic.LoadInt64(&e.batches))
		reg.Counter(metrics.Label("sccg_executor_pairs_total", "executor", id)).Add(atomic.LoadInt64(&e.pairs))
		reg.Gauge(metrics.Label("sccg_executor_pairs_per_sec", "executor", id)).Set(e.throughput())
	}
}

// stageDone closes done once the core stages have drained, then waits for
// all goroutines (including migrators) to exit.
func (r *run) stageDone(done, waitDone chan struct{}) chan struct{} {
	finished := make(chan struct{})
	go func() {
		// The executors are the last core stage: they return only after
		// pairBuf is drained. Poll drain state cheaply.
		for !r.pairBuf.isDrained() {
			time.Sleep(200 * time.Microsecond)
		}
		close(done)
		<-waitDone
		close(finished)
	}()
	return finished
}

// finishParseTask records that one input task has fully left the parser
// stage (successfully or not) and closes the parsed buffer after the last
// one.
func (r *run) finishParseTask() {
	if atomic.AddInt64(&r.pendingParse, -1) == 0 {
		r.parsedBuf.close()
	}
}

// parserWorker drains fileBuf, parsing tile files on the CPU.
func (r *run) parserWorker() {
	for {
		task, ok := r.fileBuf.get()
		if !ok {
			return
		}
		start := time.Now()
		a, err := parser.Parse(task.RawA)
		if err != nil {
			r.fail(fmt.Errorf("pipeline: tile %d set A: %w", task.Tile, err))
			r.finishParseTask()
			continue
		}
		b, err := parser.Parse(task.RawB)
		if err != nil {
			r.fail(fmt.Errorf("pipeline: tile %d set B: %w", task.Tile, err))
			r.finishParseTask()
			continue
		}
		atomic.AddInt64(&r.parserBusy, int64(time.Since(start)))
		r.parsedBuf.put(parsedTask{image: task.Image, tile: task.Tile, a: a, b: b})
		r.finishParseTask()
	}
}

// builderWorker builds Hilbert R-trees over each parsed tile.
func (r *run) builderWorker() {
	for {
		task, ok := r.parsedBuf.get()
		if !ok {
			return
		}
		start := time.Now()
		ea := make([]rtree.Entry, len(task.a))
		for i, p := range task.a {
			ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
		}
		eb := make([]rtree.Entry, len(task.b))
		for i, p := range task.b {
			eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
		}
		bt := builtTask{
			parsedTask: task,
			ta:         rtree.Build(ea, rtree.Options{}),
			tb:         rtree.Build(eb, rtree.Options{}),
		}
		atomic.AddInt64(&r.builderBusy, int64(time.Since(start)))
		r.builtBuf.put(bt)
	}
}

// filterWorker joins the two indexes of each tile into the polygon-pair
// array the aggregator consumes.
func (r *run) filterWorker() {
	for {
		task, ok := r.builtBuf.get()
		if !ok {
			return
		}
		start := time.Now()
		joined, _ := rtree.Join(task.ta, task.tb, nil)
		pairs := make([]pixelbox.Pair, len(joined))
		for i, pr := range joined {
			pairs[i] = pixelbox.Pair{P: task.a[pr.A], Q: task.b[pr.B]}
		}
		atomic.AddInt64(&r.filterBusy, int64(time.Since(start)))
		r.mu.Lock()
		r.candidates += len(pairs)
		r.mu.Unlock()
		r.pairBuf.put(pairTask{image: task.image, tile: task.tile, pairs: pairs})
	}
}

// aggregatorMigrator sleeps until the aggregator's input buffer fills (GPU
// congestion), then steals the smallest task and executes it with
// PixelBox-CPU.
func (r *run) aggregatorMigrator(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-r.pairBuf.fullCh:
		}
		for r.pairBuf.isFull() {
			task, ok := r.pairBuf.stealMin(func(t pairTask) int { return len(t.pairs) })
			if !ok {
				break
			}
			atomic.AddInt64(&r.stats.TasksToCPU, 1)
			results := pixelbox.RunCPUParallel(task.pairs, r.cfg.CPU)
			r.accumulateTask(task, results, false)
		}
	}
}

// parserMigrator sleeps until the aggregator's input buffer runs empty (GPU
// idle), then steals a file task from the parser's input buffer and parses
// it on the GPU.
func (r *run) parserMigrator(done chan struct{}) {
	if len(r.cfg.Devices) == 0 {
		<-done
		return
	}
	dev := r.cfg.Devices[0]
	// Calibrate host parse throughput lazily from parser busy counters; a
	// fixed conservative default until data exists.
	for {
		select {
		case <-done:
			return
		case <-r.pairBuf.emptyCh:
		}
		task, ok := r.fileBuf.stealMin(func(t FileTask) int { return len(t.RawA) + len(t.RawB) })
		if !ok {
			continue
		}
		atomic.AddInt64(&r.stats.TasksToGPU, 1)
		a, _, errA := parser.GPUParse(dev, task.RawA, 150e6)
		b, _, errB := parser.GPUParse(dev, task.RawB, 150e6)
		if errA != nil || errB != nil {
			if errA == nil {
				errA = errB
			}
			r.fail(fmt.Errorf("pipeline: gpu parse tile %d: %w", task.Tile, errA))
			r.finishParseTask()
			continue
		}
		r.parsedBuf.put(parsedTask{image: task.Image, tile: task.Tile, a: a, b: b})
		r.finishParseTask()
	}
}
