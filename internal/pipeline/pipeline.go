// Package pipeline implements the SCCG system framework (paper §4): a
// four-stage execution pipeline — parser, builder, filter, aggregator —
// connected by bounded work buffers, with dynamic task migration between
// CPUs and GPUs driven by the aggregator input buffer's full/empty
// transitions (§4.2).
//
// Tasks are defined at image-tile granularity: a parser task is the two
// polygon files segmented from one tile; a builder task indexes the two
// parsed polygon sets; a filter task joins the two indexes into an array of
// MBR-intersecting polygon pairs; the aggregator batches pair arrays and
// computes areas with PixelBox on the GPU (or PixelBox-CPU when tasks are
// migrated), folding the Jaccard ratios into the image's similarity score.
package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/pixelbox"
	"repro/internal/rtree"
)

// FileTask is the pipeline input: the raw text polygon files of one tile's
// two result sets.
type FileTask struct {
	Image string
	Tile  int
	RawA  []byte
	RawB  []byte
}

// parsedTask is the parser stage output.
type parsedTask struct {
	image string
	tile  int
	a, b  []*geom.Polygon
}

// builtTask is the builder stage output: parsed polygons plus their
// Hilbert R-tree indexes.
type builtTask struct {
	parsedTask
	ta, tb *rtree.Tree
}

// pairTask is the filter stage output and the aggregator's input.
type pairTask struct {
	image string
	tile  int
	pairs []pixelbox.Pair
}

// Config wires a pipeline run.
type Config struct {
	// ParserWorkers is the parser stage's CPU thread count (the stage
	// "executes on CPUs with multiple worker threads"); defaults to 2.
	ParserWorkers int
	// BufferCap is the capacity of each inter-stage buffer in tasks;
	// defaults to 8.
	BufferCap int
	// BatchPairs is the aggregator's batching target: it groups buffered
	// tasks until at least this many pairs are in hand before launching a
	// kernel (GPU input data batching, §4.1); defaults to 1024.
	BatchPairs int
	// Device is the GPU the aggregator drives. When nil the aggregator
	// falls back to PixelBox-CPU entirely.
	Device *gpu.Device
	// PixelBox configures the GPU kernel.
	PixelBox pixelbox.Config
	// CPU configures PixelBox-CPU for migrated (or fallback) tasks.
	CPU pixelbox.CPUConfig
	// Migration enables the dynamic task migration component.
	Migration bool
}

func (c Config) normalized() Config {
	if c.ParserWorkers <= 0 {
		c.ParserWorkers = 2
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 8
	}
	if c.BatchPairs <= 0 {
		c.BatchPairs = 1024
	}
	return c
}

// Stats reports what the pipeline did.
type Stats struct {
	TilesProcessed int
	PairsFiltered  int
	PairsOnGPU     int
	PairsOnCPU     int
	TasksToCPU     int64 // aggregator tasks migrated GPU -> CPU
	TasksToGPU     int64 // parser tasks migrated CPU -> GPU
	KernelLaunches int64
	DeviceSeconds  float64 // modelled GPU busy time
	WallTime       time.Duration
	ParserBusy     time.Duration
	BuilderBusy    time.Duration
	FilterBusy     time.Duration
	AggregatorBusy time.Duration
}

// Result is the cross-comparison outcome for one image's two result sets.
type Result struct {
	// Similarity is J' (Eq. 1) aggregated over all tiles.
	Similarity float64
	// RatioSum is the raw sum of per-pair Jaccard ratios (the numerator of
	// J'). Keeping it alongside Similarity lets shard results merge without
	// losing precision (see Merge).
	RatioSum float64
	// Intersecting and Candidates count truly-intersecting and
	// MBR-intersecting pairs.
	Intersecting int
	Candidates   int
	Stats        Stats
}

// Merge combines the results of several pipeline runs over disjoint tile
// shards of one comparison into the result a single run over the union would
// have produced. Similarity is recomputed from the summed ratio numerators,
// so sharding does not change the reported J'; wall time is the maximum
// across shards (they run concurrently), busy times and counters add.
func Merge(shards ...Result) Result {
	var m Result
	for _, s := range shards {
		m.RatioSum += s.RatioSum
		m.Intersecting += s.Intersecting
		m.Candidates += s.Candidates
		m.Stats.TilesProcessed += s.Stats.TilesProcessed
		m.Stats.PairsFiltered += s.Stats.PairsFiltered
		m.Stats.PairsOnGPU += s.Stats.PairsOnGPU
		m.Stats.PairsOnCPU += s.Stats.PairsOnCPU
		m.Stats.TasksToCPU += s.Stats.TasksToCPU
		m.Stats.TasksToGPU += s.Stats.TasksToGPU
		m.Stats.KernelLaunches += s.Stats.KernelLaunches
		m.Stats.DeviceSeconds += s.Stats.DeviceSeconds
		if s.Stats.WallTime > m.Stats.WallTime {
			m.Stats.WallTime = s.Stats.WallTime
		}
		m.Stats.ParserBusy += s.Stats.ParserBusy
		m.Stats.BuilderBusy += s.Stats.BuilderBusy
		m.Stats.FilterBusy += s.Stats.FilterBusy
		m.Stats.AggregatorBusy += s.Stats.AggregatorBusy
	}
	if m.Intersecting > 0 {
		m.Similarity = m.RatioSum / float64(m.Intersecting)
	}
	return m
}

// EncodeDataset converts a generated dataset into pipeline input tasks
// (text-encoded tiles, as segmentation emits them).
func EncodeDataset(d *pathology.Dataset) []FileTask {
	tasks := make([]FileTask, len(d.Pairs))
	for i, tp := range d.Pairs {
		tasks[i] = FileTask{
			Image: tp.Image,
			Tile:  tp.Index,
			RawA:  parser.Encode(tp.A),
			RawB:  parser.Encode(tp.B),
		}
	}
	return tasks
}

// Run executes the full pipeline over tasks and returns the image
// similarity and execution statistics. It is safe to call concurrently with
// distinct Configs/devices.
func Run(tasks []FileTask, cfg Config) (Result, error) {
	cfg = cfg.normalized()
	p := &run{cfg: cfg}
	return p.execute(tasks)
}

// run carries one pipeline execution's shared state.
type run struct {
	cfg Config

	fileBuf   *buffer[FileTask]
	parsedBuf *buffer[parsedTask]
	builtBuf  *buffer[builtTask]
	pairBuf   *buffer[pairTask]

	mu           sync.Mutex
	ratioSum     float64
	intersecting int
	candidates   int
	firstErr     error

	// pendingParse counts input tasks not yet pushed past the parser
	// stage; the parsed buffer closes when it reaches zero, which makes
	// parser workers and the parser migrator interchangeable producers.
	pendingParse int64

	stats Stats

	parserBusy, builderBusy, filterBusy, aggBusy int64 // atomic nanoseconds
	pairsGPU, pairsCPU                           int64
}

func (r *run) fail(err error) {
	r.mu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.mu.Unlock()
}

func (r *run) accumulate(results []pixelbox.AreaResult, onGPU bool) {
	var sum float64
	var hits int
	for _, ar := range results {
		if ratio, ok := ar.Ratio(); ok {
			sum += ratio
			hits++
		}
	}
	r.mu.Lock()
	r.ratioSum += sum
	r.intersecting += hits
	r.mu.Unlock()
	if onGPU {
		atomic.AddInt64(&r.pairsGPU, int64(len(results)))
	} else {
		atomic.AddInt64(&r.pairsCPU, int64(len(results)))
	}
}

func (r *run) execute(tasks []FileTask) (Result, error) {
	cfg := r.cfg
	r.fileBuf = newBuffer[FileTask](cfg.BufferCap)
	r.parsedBuf = newBuffer[parsedTask](cfg.BufferCap)
	r.builtBuf = newBuffer[builtTask](cfg.BufferCap)
	r.pairBuf = newBuffer[pairTask](cfg.BufferCap)

	start := time.Now()
	done := make(chan struct{})

	var wg sync.WaitGroup

	// Stage 1: parser (multi-threaded). The parsed buffer closes when the
	// pending-task counter drains, not when the workers exit, because the
	// parser migrator is an alternative producer.
	atomic.StoreInt64(&r.pendingParse, int64(len(tasks)))
	if len(tasks) == 0 {
		r.parsedBuf.close()
	}
	for w := 0; w < cfg.ParserWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.parserWorker()
		}()
	}

	// Stage 2: builder (single-threaded; "its execution speed is already
	// very fast").
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.builderWorker()
		r.builtBuf.close()
	}()

	// Stage 3: filter (single-threaded).
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.filterWorker()
		r.pairBuf.close()
	}()

	// Stage 4: aggregator (single consumer consolidating all GPU access).
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.aggregatorWorker()
	}()

	// Migration threads (§4.2): asleep until buffer transitions wake them.
	if cfg.Migration {
		wg.Add(2)
		go func() {
			defer wg.Done()
			r.aggregatorMigrator(done)
		}()
		go func() {
			defer wg.Done()
			r.parserMigrator(done)
		}()
	}

	// Feed the input and drain the pipeline.
	for _, t := range tasks {
		r.fileBuf.put(t)
	}
	r.fileBuf.close()

	// Wait for the aggregator (last stage) then stop migration workers.
	waitDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitDone)
	}()
	// The aggregator exits when pairBuf drains; done must be closed once
	// the main stages have all finished so migrators unblock. Detect via a
	// monitor goroutine on the aggregator-specific portion of wg: simplest
	// correct scheme is closing done when every stage goroutine except the
	// migrators has returned; track with a separate WaitGroup.
	<-r.stageDone(done, waitDone)

	res := Result{
		Similarity:   0,
		RatioSum:     r.ratioSum,
		Intersecting: r.intersecting,
		Candidates:   r.candidates,
	}
	if r.intersecting > 0 {
		res.Similarity = r.ratioSum / float64(r.intersecting)
	}
	r.stats.WallTime = time.Since(start)
	r.stats.PairsOnGPU = int(atomic.LoadInt64(&r.pairsGPU))
	r.stats.PairsOnCPU = int(atomic.LoadInt64(&r.pairsCPU))
	r.stats.PairsFiltered = r.stats.PairsOnGPU + r.stats.PairsOnCPU
	r.stats.TilesProcessed = len(tasks)
	r.stats.ParserBusy = time.Duration(atomic.LoadInt64(&r.parserBusy))
	r.stats.BuilderBusy = time.Duration(atomic.LoadInt64(&r.builderBusy))
	r.stats.FilterBusy = time.Duration(atomic.LoadInt64(&r.filterBusy))
	r.stats.AggregatorBusy = time.Duration(atomic.LoadInt64(&r.aggBusy))
	if cfg.Device != nil {
		r.stats.KernelLaunches = cfg.Device.Launches()
		r.stats.DeviceSeconds = cfg.Device.BusySeconds()
	}
	res.Stats = r.stats
	return res, r.firstErr
}

// stageDone closes done once the core stages have drained, then waits for
// all goroutines (including migrators) to exit.
func (r *run) stageDone(done, waitDone chan struct{}) chan struct{} {
	finished := make(chan struct{})
	go func() {
		// The aggregator is the last core stage: it returns only after
		// pairBuf is drained. Poll drain state cheaply.
		for !r.pairBuf.isDrained() {
			time.Sleep(200 * time.Microsecond)
		}
		close(done)
		<-waitDone
		close(finished)
	}()
	return finished
}

// finishParseTask records that one input task has fully left the parser
// stage (successfully or not) and closes the parsed buffer after the last
// one.
func (r *run) finishParseTask() {
	if atomic.AddInt64(&r.pendingParse, -1) == 0 {
		r.parsedBuf.close()
	}
}

// parserWorker drains fileBuf, parsing tile files on the CPU.
func (r *run) parserWorker() {
	for {
		task, ok := r.fileBuf.get()
		if !ok {
			return
		}
		start := time.Now()
		a, err := parser.Parse(task.RawA)
		if err != nil {
			r.fail(fmt.Errorf("pipeline: tile %d set A: %w", task.Tile, err))
			r.finishParseTask()
			continue
		}
		b, err := parser.Parse(task.RawB)
		if err != nil {
			r.fail(fmt.Errorf("pipeline: tile %d set B: %w", task.Tile, err))
			r.finishParseTask()
			continue
		}
		atomic.AddInt64(&r.parserBusy, int64(time.Since(start)))
		r.parsedBuf.put(parsedTask{image: task.Image, tile: task.Tile, a: a, b: b})
		r.finishParseTask()
	}
}

// builderWorker builds Hilbert R-trees over each parsed tile.
func (r *run) builderWorker() {
	for {
		task, ok := r.parsedBuf.get()
		if !ok {
			return
		}
		start := time.Now()
		ea := make([]rtree.Entry, len(task.a))
		for i, p := range task.a {
			ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
		}
		eb := make([]rtree.Entry, len(task.b))
		for i, p := range task.b {
			eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
		}
		bt := builtTask{
			parsedTask: task,
			ta:         rtree.Build(ea, rtree.Options{}),
			tb:         rtree.Build(eb, rtree.Options{}),
		}
		atomic.AddInt64(&r.builderBusy, int64(time.Since(start)))
		r.builtBuf.put(bt)
	}
}

// filterWorker joins the two indexes of each tile into the polygon-pair
// array the aggregator consumes.
func (r *run) filterWorker() {
	for {
		task, ok := r.builtBuf.get()
		if !ok {
			return
		}
		start := time.Now()
		joined, _ := rtree.Join(task.ta, task.tb, nil)
		pairs := make([]pixelbox.Pair, len(joined))
		for i, pr := range joined {
			pairs[i] = pixelbox.Pair{P: task.a[pr.A], Q: task.b[pr.B]}
		}
		atomic.AddInt64(&r.filterBusy, int64(time.Since(start)))
		r.mu.Lock()
		r.candidates += len(pairs)
		r.mu.Unlock()
		r.pairBuf.put(pairTask{image: task.image, tile: task.tile, pairs: pairs})
	}
}

// aggregatorWorker batches pair tasks and runs PixelBox, consolidating all
// kernel launches into a single device client (§4.1: "a single instance of
// the aggregator consolidates all kernel invocations").
func (r *run) aggregatorWorker() {
	for {
		task, ok := r.pairBuf.get()
		if !ok {
			return
		}
		batch := task.pairs
		// Batch more tasks opportunistically up to the target.
		for len(batch) < r.cfg.BatchPairs {
			extra, ok := r.pairBuf.tryGet()
			if !ok {
				break
			}
			batch = append(batch, extra.pairs...)
		}
		start := time.Now()
		if r.cfg.Device != nil {
			results, _, _ := pixelbox.RunGPU(r.cfg.Device, batch, r.cfg.PixelBox)
			r.accumulate(results, true)
		} else {
			results := pixelbox.RunCPUParallel(batch, r.cfg.CPU)
			r.accumulate(results, false)
		}
		atomic.AddInt64(&r.aggBusy, int64(time.Since(start)))
	}
}

// aggregatorMigrator sleeps until the aggregator's input buffer fills (GPU
// congestion), then steals the smallest task and executes it with
// PixelBox-CPU.
func (r *run) aggregatorMigrator(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-r.pairBuf.fullCh:
		}
		for r.pairBuf.isFull() {
			task, ok := r.pairBuf.stealMin(func(t pairTask) int { return len(t.pairs) })
			if !ok {
				break
			}
			atomic.AddInt64(&r.stats.TasksToCPU, 1)
			results := pixelbox.RunCPUParallel(task.pairs, r.cfg.CPU)
			r.accumulate(results, false)
		}
	}
}

// parserMigrator sleeps until the aggregator's input buffer runs empty (GPU
// idle), then steals a file task from the parser's input buffer and parses
// it on the GPU.
func (r *run) parserMigrator(done chan struct{}) {
	if r.cfg.Device == nil {
		<-done
		return
	}
	// Calibrate host parse throughput lazily from parser busy counters; a
	// fixed conservative default until data exists.
	for {
		select {
		case <-done:
			return
		case <-r.pairBuf.emptyCh:
		}
		task, ok := r.fileBuf.stealMin(func(t FileTask) int { return len(t.RawA) + len(t.RawB) })
		if !ok {
			continue
		}
		atomic.AddInt64(&r.stats.TasksToGPU, 1)
		a, _, errA := parser.GPUParse(r.cfg.Device, task.RawA, 150e6)
		b, _, errB := parser.GPUParse(r.cfg.Device, task.RawB, 150e6)
		if errA != nil || errB != nil {
			if errA == nil {
				errA = errB
			}
			r.fail(fmt.Errorf("pipeline: gpu parse tile %d: %w", task.Tile, errA))
			r.finishParseTask()
			continue
		}
		r.parsedBuf.put(parsedTask{image: task.Image, tile: task.Tile, a: a, b: b})
		r.finishParseTask()
	}
}
