package pipeline

import (
	"math"
	"sync"
	"testing"

	"repro/internal/clip"
	"repro/internal/gpu"
	"repro/internal/pathology"
	"repro/internal/rtree"
	"repro/internal/sdbms"
)

func smallDataset() *pathology.Dataset {
	spec := pathology.Corpus()[0]
	spec.Tiles = 3
	return pathology.Generate(spec)
}

// oracleSimilarity computes J' for a dataset directly with the exact
// overlay, tile by tile.
func oracleSimilarity(d *pathology.Dataset) (float64, int) {
	var sum float64
	var hits int
	for _, tp := range d.Pairs {
		ea := make([]rtree.Entry, len(tp.A))
		for i, p := range tp.A {
			ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
		}
		eb := make([]rtree.Entry, len(tp.B))
		for i, p := range tp.B {
			eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
		}
		pairs, _ := rtree.Join(rtree.Build(ea, rtree.Options{}), rtree.Build(eb, rtree.Options{}), nil)
		for _, pr := range pairs {
			if ratio, ok := clip.JaccardRatio(tp.A[pr.A], tp.B[pr.B]); ok {
				sum += ratio
				hits++
			}
		}
	}
	if hits == 0 {
		return 0, 0
	}
	return sum / float64(hits), hits
}

func TestPipelineMatchesOracleGPU(t *testing.T) {
	d := smallDataset()
	wantSim, wantHits := oracleSimilarity(d)
	tasks := EncodeDataset(d)
	dev := gpu.NewDevice(gpu.GTX580())
	res, err := Run(tasks, Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intersecting != wantHits {
		t.Fatalf("intersecting = %d, want %d", res.Intersecting, wantHits)
	}
	if math.Abs(res.Similarity-wantSim) > 1e-9 {
		t.Fatalf("similarity = %v, want %v", res.Similarity, wantSim)
	}
	if res.Stats.PairsOnGPU == 0 {
		t.Fatal("no pairs processed on GPU")
	}
	if res.Stats.KernelLaunches == 0 || res.Stats.DeviceSeconds <= 0 {
		t.Fatal("device accounting missing")
	}
	if res.Stats.TilesProcessed != len(tasks) {
		t.Fatalf("tiles = %d", res.Stats.TilesProcessed)
	}
}

func TestPipelineMatchesOracleCPUOnly(t *testing.T) {
	d := smallDataset()
	wantSim, wantHits := oracleSimilarity(d)
	res, err := Run(EncodeDataset(d), Config{Device: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intersecting != wantHits {
		t.Fatalf("intersecting = %d, want %d", res.Intersecting, wantHits)
	}
	if math.Abs(res.Similarity-wantSim) > 1e-9 {
		t.Fatalf("similarity = %v, want %v", res.Similarity, wantSim)
	}
	if res.Stats.PairsOnCPU == 0 || res.Stats.PairsOnGPU != 0 {
		t.Fatalf("pair placement wrong: cpu=%d gpu=%d", res.Stats.PairsOnCPU, res.Stats.PairsOnGPU)
	}
}

func TestPipelineWithMigrationStillExact(t *testing.T) {
	d := smallDataset()
	wantSim, wantHits := oracleSimilarity(d)
	dev := gpu.NewDevice(gpu.GTX580())
	// Tiny buffers force full/empty transitions so both migrators fire.
	res, err := Run(EncodeDataset(d), Config{
		Device:     dev,
		Migration:  true,
		BufferCap:  1,
		BatchPairs: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intersecting != wantHits {
		t.Fatalf("intersecting = %d, want %d", res.Intersecting, wantHits)
	}
	if math.Abs(res.Similarity-wantSim) > 1e-9 {
		t.Fatalf("similarity = %v, want %v", res.Similarity, wantSim)
	}
	if res.Stats.PairsOnGPU+res.Stats.PairsOnCPU != res.Stats.PairsFiltered {
		t.Fatal("pair accounting inconsistent")
	}
}

func TestPipelineMatchesSDBMS(t *testing.T) {
	// End-to-end cross-check: the pipeline and the SDBMS must compute the
	// same similarity for the same dataset.
	d := smallDataset()
	a, b := d.GlobalPolygons()
	db := sdbms.NewDB()
	if _, err := db.CreateTable("a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("b", b); err != nil {
		t.Fatal(err)
	}
	want, err := db.CrossCompare("a", "b", sdbms.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpu.NewDevice(gpu.GTX580())
	got, err := Run(EncodeDataset(d), Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	// Tile-local vs global comparison can differ if polygons crossed tile
	// borders, but the generator keeps objects strictly within tiles, so
	// the match must be exact.
	if got.Intersecting != want.IntersectingPairs {
		t.Fatalf("pipeline found %d intersecting pairs, SDBMS %d", got.Intersecting, want.IntersectingPairs)
	}
	if math.Abs(got.Similarity-want.Similarity) > 1e-9 {
		t.Fatalf("pipeline J'=%v, SDBMS J'=%v", got.Similarity, want.Similarity)
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	res, err := Run(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Similarity != 0 || res.Candidates != 0 {
		t.Fatalf("empty run produced %+v", res)
	}
}

func TestPipelineParseErrorPropagates(t *testing.T) {
	tasks := []FileTask{{Image: "x", Tile: 0, RawA: []byte("garbage\n"), RawB: []byte("more\n")}}
	_, err := Run(tasks, Config{})
	if err == nil {
		t.Fatal("bad input did not error")
	}
}

func TestPipelineConcurrentRunsIndependent(t *testing.T) {
	d := smallDataset()
	tasks := EncodeDataset(d)
	want, _ := Run(tasks, Config{Device: gpu.NewDevice(gpu.GTX580())})
	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Run(tasks, Config{Device: gpu.NewDevice(gpu.GTX580())})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i, res := range results {
		if res.Similarity != want.Similarity || res.Intersecting != want.Intersecting {
			t.Fatalf("run %d diverged: %v vs %v", i, res.Similarity, want.Similarity)
		}
	}
}

func TestBufferBasics(t *testing.T) {
	b := newBuffer[int](2)
	b.put(1)
	b.put(2)
	if !b.isFull() {
		t.Fatal("buffer should be full")
	}
	if v, ok := b.get(); !ok || v != 1 {
		t.Fatalf("got %v,%v", v, ok)
	}
	if v, ok := b.tryGet(); !ok || v != 2 {
		t.Fatalf("tryGet %v,%v", v, ok)
	}
	if _, ok := b.tryGet(); ok {
		t.Fatal("tryGet on empty")
	}
	b.close()
	if _, ok := b.get(); ok {
		t.Fatal("get after close+drain")
	}
	if !b.isDrained() {
		t.Fatal("not drained")
	}
}

func TestBufferStealMin(t *testing.T) {
	b := newBuffer[int](8)
	for _, v := range []int{5, 3, 9, 1, 7} {
		b.put(v)
	}
	v, ok := b.stealMin(func(x int) int { return x })
	if !ok || v != 1 {
		t.Fatalf("stealMin = %v,%v", v, ok)
	}
	if b.len() != 4 {
		t.Fatalf("len = %d", b.len())
	}
	// Remaining order preserved for FIFO gets.
	if v, _ := b.get(); v != 5 {
		t.Fatalf("head = %v", v)
	}
}

func TestBufferBlockingPutGet(t *testing.T) {
	b := newBuffer[int](1)
	b.put(1)
	done := make(chan struct{})
	go func() {
		b.put(2) // blocks until a get
		close(done)
	}()
	if v, _ := b.get(); v != 1 {
		t.Fatal("wrong head")
	}
	<-done
	if v, _ := b.get(); v != 2 {
		t.Fatal("second item lost")
	}
}
