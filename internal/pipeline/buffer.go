package pipeline

import "sync"

// buffer is a bounded inter-stage work buffer. Unlike a plain channel it
// supports the two operations the paper's task-migration design needs
// (§4.2): observing fullness/emptiness transitions (the migration triggers)
// and stealing a selected task out of the middle of the buffer (the
// aggregator's migration thread "selects the smallest tasks from the input
// buffer").
type buffer[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []T
	capacity int
	closed   bool

	// fullCh and emptyCh receive non-blocking notifications when the
	// buffer becomes full / is found empty by a consumer, waking migration
	// workers.
	fullCh  chan struct{}
	emptyCh chan struct{}
}

func newBuffer[T any](capacity int) *buffer[T] {
	if capacity < 1 {
		capacity = 1
	}
	b := &buffer[T]{
		capacity: capacity,
		fullCh:   make(chan struct{}, 1),
		emptyCh:  make(chan struct{}, 1),
	}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

func notify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// put blocks until there is room, then appends item. Putting to a closed
// buffer panics (a pipeline wiring bug).
func (b *buffer[T]) put(item T) {
	b.mu.Lock()
	for len(b.items) >= b.capacity && !b.closed {
		notify(b.fullCh)
		b.notFull.Wait()
	}
	if b.closed {
		b.mu.Unlock()
		panic("pipeline: put on closed buffer")
	}
	b.items = append(b.items, item)
	if len(b.items) >= b.capacity {
		notify(b.fullCh)
	}
	b.notEmpty.Signal()
	b.mu.Unlock()
}

// get blocks until an item is available or the buffer is closed and
// drained; ok is false in the latter case.
func (b *buffer[T]) get() (item T, ok bool) {
	b.mu.Lock()
	for len(b.items) == 0 && !b.closed {
		notify(b.emptyCh)
		b.notEmpty.Wait()
	}
	if len(b.items) == 0 {
		b.mu.Unlock()
		return item, false
	}
	item = b.items[0]
	var zero T
	b.items[0] = zero
	b.items = b.items[1:]
	b.notFull.Signal()
	b.mu.Unlock()
	return item, true
}

// tryGet takes an item without blocking.
func (b *buffer[T]) tryGet() (item T, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		return item, false
	}
	item = b.items[0]
	var zero T
	b.items[0] = zero
	b.items = b.items[1:]
	b.notFull.Signal()
	return item, true
}

// stealMin removes and returns the item minimising weight; ok is false when
// the buffer is empty. Migration threads use it to pull the smallest tasks
// (cheapest to execute on the slower device).
func (b *buffer[T]) stealMin(weight func(T) int) (item T, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.takeMinLocked(weight)
}

// getMin blocks until an item is available (or the buffer is closed and
// drained, reporting ok=false) and removes the item minimising weight. It is
// the blocking form of stealMin used by the slower executors of the hybrid
// aggregator, which always prefer the cheapest task in the buffer.
func (b *buffer[T]) getMin(weight func(T) int) (item T, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items) == 0 && !b.closed {
		notify(b.emptyCh)
		b.notEmpty.Wait()
	}
	return b.takeMinLocked(weight)
}

func (b *buffer[T]) takeMinLocked(weight func(T) int) (item T, ok bool) {
	if len(b.items) == 0 {
		return item, false
	}
	best := 0
	bestW := weight(b.items[0])
	for i := 1; i < len(b.items); i++ {
		if w := weight(b.items[i]); w < bestW {
			best, bestW = i, w
		}
	}
	item = b.items[best]
	b.items = append(b.items[:best], b.items[best+1:]...)
	b.notFull.Signal()
	return item, true
}

// close marks the buffer complete; blocked getters drain and return.
func (b *buffer[T]) close() {
	b.mu.Lock()
	b.closed = true
	b.notEmpty.Broadcast()
	b.notFull.Broadcast()
	b.mu.Unlock()
}

// len returns the current occupancy.
func (b *buffer[T]) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// isFull reports whether the buffer is at capacity.
func (b *buffer[T]) isFull() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items) >= b.capacity
}

// isDrained reports closed-and-empty.
func (b *buffer[T]) isDrained() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed && len(b.items) == 0
}
