// Sensitivity study: the workload that motivates the paper. A segmentation
// algorithm is re-run over the same image with a sweep of one parameter
// (here, the boundary-noise amplitude standing in for a sensitivity knob),
// and each output is cross-compared against the reference segmentation.
// The J' curve quantifies how sensitive the algorithm is to the parameter —
// exactly the "parameter sensitivity studies" of §1.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/pathology"
)

func main() {
	base := pathology.DefaultGenConfig()
	const tiles = 4

	// Reference segmentation: the algorithm at its default parameters.
	reference := segment(base, 100)

	fmt.Println("parameter sweep: boundary-noise amplitude vs similarity to reference")
	fmt.Println()
	fmt.Println("noise   J'      intersecting  candidates")
	fmt.Println("-----   -----   ------------  ----------")
	for _, noise := range []float64{0.10, 0.18, 0.25, 0.35, 0.50, 0.70} {
		cfg := base
		cfg.Noise = noise
		variant := segment(cfg, 100)

		eng := sccg.NewEngine(sccg.Options{})
		var simSum float64
		var hitSum, candSum int
		for i := 0; i < tiles; i++ {
			sim, hits, cands := eng.CrossComparePolygons(reference[i], variant[i])
			simSum += sim
			hitSum += hits
			candSum += cands
		}
		fmt.Printf("%.2f    %.3f   %-12d  %d\n", noise, simSum/tiles, hitSum, candSum)
	}
	fmt.Println()
	fmt.Println("J' falls as the parameter drifts from the reference configuration;")
	fmt.Println("a steep drop marks a sensitive parameter (paper §1, §2.1).")
}

// segment runs the "algorithm" over the image's tiles with one parameter
// set. The generator's ground truth is seeded identically, so differences
// between runs come only from the parameters — the same property real
// re-segmentation has.
func segment(cfg pathology.GenConfig, seed int64) [][]*sccg.Polygon {
	const tiles = 4
	out := make([][]*sccg.Polygon, tiles)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < tiles; i++ {
		tp := pathology.GenerateTilePair(rng, "sens", i, cfg)
		out[i] = tp.A
	}
	return out
}
