// Example crossmatrix exercises the cross-dataset comparison subsystem end
// to end, in process: generate three variant segmentations of the same
// slide (same tile keys, increasingly perturbed polygons), ingest them into
// a persistent store, run one pairwise cross job through the facade, then a
// 3-way similarity matrix run, and print the symmetric matrix. A second
// matrix over the same datasets demonstrates every cell answering from the
// result cache.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crossmatrix: ")

	dir, err := os.MkdirTemp("", "crossmatrix-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := sccg.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	svc := sccg.NewService(sccg.ServiceOptions{Devices: 2, HybridCPU: true, Store: st})
	defer svc.Close()

	// Three segmentation runs over the same slide: identical tile keys
	// (image name and tile indexes), different algorithm behaviour modelled
	// as growing jitter. Content addressing gives each a distinct ID.
	base := sccg.Representative()
	base.Tiles = 4
	var ids []string
	for i, jitter := range []float64{0.00, 0.02, 0.06} {
		spec := base
		spec.Seed = base.Seed // same ground truth every run
		spec.Gen.JitterRadius = jitter
		man, err := sccg.IngestDataset(st, sccg.GenerateDataset(spec))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("algorithm %d -> dataset %s (%d tiles, %d polygons)\n",
			i+1, man.ID[:12], len(man.Tiles), man.Polygons)
		ids = append(ids, man.ID)
	}

	// One pairwise cross job: algorithm 1's result set A vs algorithm 3's
	// result set B, tile by tile.
	jobID, match, err := svc.CompareStored(ids[0], ids[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross job %s over %d matched tiles (%d/%d unmatched)\n",
		jobID, len(match.Pairs), len(match.OnlyA), len(match.OnlyB))
	for {
		js, ok := svc.Job(jobID)
		if !ok {
			log.Fatal("cross job vanished")
		}
		if js.State.Terminal() {
			fmt.Printf("cross similarity %.4f (%d intersecting pairs)\n",
				js.Report.Similarity, js.Report.Intersecting)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	runMatrix := func() sccg.MatrixStatus {
		mxID, err := svc.SubmitMatrix(ids)
		if err != nil {
			log.Fatal(err)
		}
		for {
			mst, ok := svc.Matrix(mxID)
			if !ok {
				log.Fatal("matrix run vanished")
			}
			if mst.State != "running" {
				return mst
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	mst := runMatrix()
	fmt.Printf("matrix %s finished %s: %d cells, group %s (%d done jobs)\n",
		mst.ID, mst.State, mst.PlannedCells, mst.Group.ID, mst.Group.Done)
	printMatrix(mst)

	again := runMatrix()
	cached := 0
	for i := range again.Cells {
		for j := range again.Cells[i] {
			if i != j && again.Cells[i][j].Cached {
				cached++
			}
		}
	}
	fmt.Printf("repeat matrix %s: %d/%d cells served from cache\n",
		again.ID, cached/2, again.PlannedCells)
}

func printMatrix(mst sccg.MatrixStatus) {
	fmt.Print("        ")
	for j := range mst.Datasets {
		fmt.Printf("  algo%d", j+1)
	}
	fmt.Println()
	for i := range mst.Cells {
		fmt.Printf("  algo%d ", i+1)
		for j, c := range mst.Cells[i] {
			if i == j {
				fmt.Print("      -")
				continue
			}
			fmt.Printf(" %.4f", c.Similarity)
		}
		fmt.Println()
	}
}
