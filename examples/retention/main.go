// Example retention exercises the store GC subsystem in process: ingest a
// stream of distinct datasets into a persistent store whose service is
// bounded by a byte budget, watch the retention sweeper evict cold datasets
// (least-recently-used first, with their cached reports cascaded), pin one
// dataset the way a running job would, and show it surviving a sweep the
// budget would otherwise claim it in.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("retention: ")

	dir, err := os.MkdirTemp("", "retention-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := sccg.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Size the budget in datasets: ingest one, read its footprint, allow
	// room for three.
	base := sccg.Representative()
	base.Tiles = 2
	probe := base
	probe.Seed = 1
	man, err := sccg.IngestDataset(st, sccg.GenerateDataset(probe))
	if err != nil {
		log.Fatal(err)
	}
	budget := man.SegmentBytes*3 + man.SegmentBytes/2

	svc := sccg.NewService(sccg.ServiceOptions{
		Devices:       1,
		Store:         st,
		StoreMaxBytes: budget, // background sweeper owned by the service
	})
	defer svc.Close()
	fmt.Printf("byte budget %d (~3 datasets of %d bytes)\n\n", budget, man.SegmentBytes)

	// Keep the first dataset pinned, as a queued/running job would: the
	// sweeper must never take it, no matter how cold it gets.
	if err := st.Pin(man.ID); err != nil {
		log.Fatal(err)
	}
	defer st.Unpin(man.ID)
	fmt.Printf("pinned   %s (oldest, held by a 'job')\n", man.ID[:12])

	// Stream six more distinct datasets through the store. Each ingest puts
	// the store over budget; each on-demand GC evicts the coldest unpinned
	// dataset.
	for seed := int64(2); seed <= 7; seed++ {
		spec := base
		spec.Seed = seed
		m, err := sccg.IngestDataset(st, sccg.GenerateDataset(spec))
		if err != nil {
			log.Fatal(err)
		}
		sw, err := svc.GC()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %s -> store %d/%d bytes, %d datasets (evicted %d, pinned skips %d)\n",
			m.ID[:12], sw.StoreBytes, budget, sw.Datasets, sw.BudgetEvicted, sw.PinnedSkipped)
		if sw.StoreBytes > budget {
			log.Fatalf("store exceeded its budget: %d > %d", sw.StoreBytes, budget)
		}
	}

	if _, ok := st.Get(man.ID); !ok {
		log.Fatal("the pinned dataset was evicted")
	}
	fmt.Printf("\npinned dataset %s survived every sweep; %d datasets remain\n",
		man.ID[:12], st.Len())

	// Released, it is just another cold dataset: the next sweep may take it.
	st.Unpin(man.ID)
	sw, err := svc.GC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after unpin: sweep evicted %d, store %d bytes, %d datasets\n",
		sw.BudgetEvicted, sw.StoreBytes, sw.Datasets)
}
