// Kernel tuning: explore PixelBox's two tuning knobs — thread-block size n
// and pixelization threshold T — on a concrete workload, printing the
// modelled device-time surface. Reproduces the methodology behind §3.4 and
// §5.4: good T lies in [n²/8, n²], and small blocks beat large ones.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/experiments"
	"repro/internal/pathology"
	"repro/internal/pixelbox"
)

func main() {
	// A workload of pairs from a few tiles, scaled 3x to give the sampling
	// boxes something to do.
	rng := rand.New(rand.NewSource(42))
	var pairs []sccg.Pair
	for t := 0; t < 3; t++ {
		tp := pathology.GenerateTilePair(rng, "tuning", t, pathology.DefaultGenConfig())
		pairs = append(pairs, sccg.MatchPairs(tp.A, tp.B)...)
	}
	pairs = experiments.ScalePairs(pairs, 3)
	fmt.Printf("workload: %d polygon pairs at scale factor 3\n\n", len(pairs))

	blockSizes := []int{32, 64, 128, 256}
	thresholds := []int{64, 256, 1024, 2048, 4096, 16384}

	fmt.Printf("%-8s", "n \\ T")
	for _, T := range thresholds {
		fmt.Printf("%9d", T)
	}
	fmt.Println("   (modelled device ms)")
	bestSecs := -1.0
	var bestN, bestT int
	for _, n := range blockSizes {
		fmt.Printf("%-8d", n)
		for _, T := range thresholds {
			secs := experiments.GPUSeconds(pairs, pixelbox.Config{BlockSize: n, Threshold: T})
			fmt.Printf("%9.3f", secs*1e3)
			if bestSecs < 0 || secs < bestSecs {
				bestSecs, bestN, bestT = secs, n, T
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nbest: n=%d, T=%d (%.3fms)\n", bestN, bestT, bestSecs*1e3)
	fmt.Printf("paper's guidance: n small (64), T ≈ n²/2 = %d\n", bestN*bestN/2)
}
