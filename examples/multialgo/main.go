// Multi-algorithm consolidation: cross-compare k segmentation algorithms
// pairwise over the same image and print the similarity matrix — the
// "algorithm validation and consolidation" workflow of §1, where many
// result sets from different algorithms (or parameterisations) must be
// compared with each other.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/pathology"
)

func main() {
	const tiles = 3
	algorithms := []struct {
		name string
		cfg  func(pathology.GenConfig) pathology.GenConfig
	}{
		{"baseline", func(c pathology.GenConfig) pathology.GenConfig { return c }},
		{"low-noise", func(c pathology.GenConfig) pathology.GenConfig { c.Noise = 0.12; return c }},
		{"hi-noise", func(c pathology.GenConfig) pathology.GenConfig { c.Noise = 0.45; return c }},
		{"dilated", func(c pathology.GenConfig) pathology.GenConfig { c.MeanRadius *= 1.15; return c }},
	}

	// Segment the same image (same seed => same ground truth) with each
	// algorithm.
	results := make([][][]*sccg.Polygon, len(algorithms))
	for ai, alg := range algorithms {
		cfg := alg.cfg(pathology.DefaultGenConfig())
		rng := rand.New(rand.NewSource(7))
		results[ai] = make([][]*sccg.Polygon, tiles)
		for t := 0; t < tiles; t++ {
			tp := pathology.GenerateTilePair(rng, "multi", t, cfg)
			results[ai][t] = tp.A
		}
	}

	eng := sccg.NewEngine(sccg.Options{})
	fmt.Println("pairwise J' similarity matrix:")
	fmt.Println()
	fmt.Printf("%-10s", "")
	for _, alg := range algorithms {
		fmt.Printf("%-10s", alg.name)
	}
	fmt.Println()
	for i := range algorithms {
		fmt.Printf("%-10s", algorithms[i].name)
		for j := range algorithms {
			if j < i {
				fmt.Printf("%-10s", "·")
				continue
			}
			var sum float64
			for t := 0; t < tiles; t++ {
				sim, _, _ := eng.CrossComparePolygons(results[i][t], results[j][t])
				sum += sim
			}
			fmt.Printf("%-10.3f", sum/tiles)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("device busy: %.4gs modelled over %d launches\n",
		eng.Device().BusySeconds(), eng.Device().Launches())
	fmt.Println("\nhigh off-diagonal J' marks algorithms that consolidate well;")
	fmt.Println("the diagonal is 1 by construction (an algorithm vs itself).")
}
