// Example serviceclient starts an in-process sccgd service on a loopback
// port and drives it the way an external client would: submit a corpus
// dataset job over HTTP, poll until it finishes, print the report, then
// resubmit the same dataset to show the cache answering without any new
// kernel launches.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro"
)

type jobResp struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
	Report *struct {
		Similarity     float64 `json:"similarity"`
		Intersecting   int     `json:"intersecting"`
		Candidates     int     `json:"candidates"`
		KernelLaunches int64   `json:"kernel_launches"`
		DeviceSeconds  float64 `json:"device_seconds"`
	} `json:"report"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serviceclient: ")

	svc := sccg.NewService(sccg.ServiceOptions{Devices: 2, Migration: true})
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, svc.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("service listening on", base)

	submit := func() jobResp {
		body, _ := json.Marshal(map[string]any{"corpus": "oligoastroIII_1"})
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var j jobResp
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			log.Fatal(err)
		}
		return j
	}
	poll := func(id string) jobResp {
		for {
			resp, err := http.Get(base + "/jobs/" + id)
			if err != nil {
				log.Fatal(err)
			}
			var j jobResp
			err = json.NewDecoder(resp.Body).Decode(&j)
			resp.Body.Close()
			if err != nil {
				log.Fatal(err)
			}
			if j.State == "done" || j.State == "failed" || j.State == "canceled" {
				return j
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	first := submit()
	fmt.Printf("submitted %s (state %s)\n", first.ID, first.State)
	done := poll(first.ID)
	if done.State != "done" {
		log.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	fmt.Printf("similarity %.4f over %d intersecting / %d candidate pairs\n",
		done.Report.Similarity, done.Report.Intersecting, done.Report.Candidates)
	fmt.Printf("device: %d kernel launches, %.4fs modelled busy time\n",
		done.Report.KernelLaunches, done.Report.DeviceSeconds)

	again := submit()
	fmt.Printf("resubmitted: job %s cached=%v state=%s\n", again.ID, again.Cached, again.State)
	if !again.Cached || again.ID != first.ID {
		log.Fatal("expected the repeat submission to be served from cache")
	}
	fmt.Println("cache hit: no new work scheduled")
}
