// Example cluster boots a 3-node sccgd cluster in one process — three full
// service stacks, each with its own store and HTTP listener, cross-wired as
// peers — then shows the clustering contract end to end: datasets ingested
// only on node 1, a 3-way similarity matrix submitted to node 2 (which pulls
// every missing dataset peer-to-peer with digest verification and routes
// cells to their rendezvous owners), and the same matrix repeated on node 3,
// answered entirely from the cluster-wide result cache without a single new
// job anywhere.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro"
)

type node struct {
	addr string
	svc  *sccg.Service
	srv  *http.Server
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster: ")

	// Listeners first: every node needs the full membership up front.
	const n = 3
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}

	nodes := make([]*node, n)
	for i := range nodes {
		dir, err := os.MkdirTemp("", fmt.Sprintf("sccgd-node%d-*", i+1))
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		st, err := sccg.OpenStore(dir)
		if err != nil {
			log.Fatal(err)
		}
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		svc := sccg.NewService(sccg.ServiceOptions{
			Devices:   1,
			Store:     st,
			Peers:     peers,
			Advertise: addrs[i],
		})
		defer svc.Close()
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(lns[i])
		defer srv.Close()
		nodes[i] = &node{addr: addrs[i], svc: svc, srv: srv}
		fmt.Printf("node %d serving at %s\n", i+1, addrs[i])
	}

	// Ingest three segmentation variants on node 1 only.
	base := sccg.Representative()
	base.Tiles = 3
	var ids []string
	for i, jitter := range []float64{0.00, 0.02, 0.06} {
		spec := base
		spec.Gen.JitterRadius = jitter
		man, err := sccg.IngestDataset(nodes[0].svc.Store(), sccg.GenerateDataset(spec))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node 1 ingested algorithm %d -> %s\n", i+1, man.ID[:12])
		ids = append(ids, man.ID)
	}

	// A 3-way matrix on node 2, which holds none of the datasets: it pulls
	// them peer-to-peer (every tile digest-verified on arrival) and fans the
	// cells across the cluster by rendezvous placement.
	mst := runMatrix(nodes[1].addr, ids)
	fmt.Printf("matrix on node 2: %s, %d cells\n", mst.State, len(ids)*(len(ids)-1)/2)
	printCells(mst)

	// The repeat on node 3 is answered from the cluster-wide result cache:
	// zero new scheduler jobs on any node.
	before := jobs(nodes)
	again := runMatrix(nodes[2].addr, ids)
	fmt.Printf("repeat on node 3: %s, %d new jobs cluster-wide\n", again.State, jobs(nodes)-before)

	// /healthz reports membership.
	resp, err := http.Get(nodes[1].addr + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Cluster json.RawMessage `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 2 healthz cluster block: %s\n", hz.Cluster)
}

type matrixStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Cells [][]struct {
		State      string  `json:"state"`
		Cached     bool    `json:"cached"`
		Similarity float64 `json:"similarity"`
	} `json:"cells"`
}

func runMatrix(base string, ids []string) matrixStatus {
	body, _ := json.Marshal(map[string]any{"datasets": ids})
	resp, err := http.Post(base+"/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("matrix submit: %d: %s", resp.StatusCode, raw)
	}
	var mst matrixStatus
	if err := json.Unmarshal(raw, &mst); err != nil {
		log.Fatal(err)
	}
	for mst.State == "running" {
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(base + "/matrix/" + mst.ID)
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&mst)
		r.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	return mst
}

func printCells(mst matrixStatus) {
	for i := range mst.Cells {
		fmt.Print("  ")
		for j, c := range mst.Cells[i] {
			if i == j {
				fmt.Print("      - ")
				continue
			}
			fmt.Printf(" %.4f ", c.Similarity)
		}
		fmt.Println()
	}
}

func jobs(nodes []*node) int64 {
	var sum int64
	for _, nd := range nodes {
		sum += nd.svc.Scheduler().Stats().Submitted
	}
	return sum
}
