// Quickstart: generate one synthetic image tile segmented by two algorithm
// variants, cross-compare the two polygon sets three ways — exact sweep
// overlay, PixelBox-CPU, PixelBox on the simulated GPU — and show that all
// three agree exactly while differing wildly in cost.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
	"repro/internal/pathology"
	"repro/internal/pixelbox"
)

func main() {
	// One tile, two result sets (algorithm A vs algorithm B on the same
	// ground truth).
	rng := rand.New(rand.NewSource(2012))
	tile := pathology.GenerateTilePair(rng, "quickstart", 0, pathology.DefaultGenConfig())
	fmt.Printf("tile: %d polygons in set A, %d in set B\n", len(tile.A), len(tile.B))

	// Filter: every pair with intersecting MBRs.
	pairs := sccg.MatchPairs(tile.A, tile.B)
	fmt.Printf("filter: %d candidate pairs\n\n", len(pairs))

	// 1. Exact sweep overlay (the GEOS/SDBMS way).
	start := time.Now()
	exact := make([]sccg.AreaResult, len(pairs))
	for i, pr := range pairs {
		exact[i] = sccg.ExactAreas(pr.P, pr.Q)
	}
	sweepTime := time.Since(start)

	// 2. PixelBox-CPU.
	start = time.Now()
	cpu := pixelbox.RunCPU(pairs, pixelbox.CPUConfig{})
	cpuTime := time.Since(start)

	// 3. PixelBox on the simulated GTX 580.
	eng := sccg.NewEngine(sccg.Options{})
	gpuRes := eng.ComputeAreas(pairs)
	gpuTime := eng.Device().BusySeconds()

	// All three must agree bit-for-bit (paper §3.4: pixelization loses no
	// precision on rectilinear polygons).
	for i := range pairs {
		if cpu[i] != exact[i] || gpuRes[i] != exact[i] {
			panic(fmt.Sprintf("pair %d disagrees: sweep=%+v cpu=%+v gpu=%+v",
				i, exact[i], cpu[i], gpuRes[i]))
		}
	}
	fmt.Println("sweep, PixelBox-CPU and PixelBox(GPU) agree on every pair ✓")

	sim, hits, cands := eng.CrossComparePolygons(tile.A, tile.B)
	fmt.Printf("\nJaccard similarity J' = %.4f (%d intersecting of %d candidates)\n", sim, hits, cands)
	fmt.Printf("\nsweep overlay : %v\n", sweepTime)
	fmt.Printf("PixelBox-CPU  : %v\n", cpuTime)
	fmt.Printf("PixelBox(GPU) : %.3gs modelled device time\n", gpuTime)
}
