package sccg_test

// Three-node cluster end-to-end: every node runs the full sccgd service
// stack over its own store, cross-wired as peers over real TCP listeners.
// The phases walk the clustering contract — a job lands on a node that
// doesn't hold the dataset and is answered after a digest-verified
// peer-to-peer pull; a K-way matrix is bit-identical to the single-node
// answer; repeating the matrix anywhere in the cluster recomputes nothing;
// a restarted node answers the repeat from the cluster-wide persisted cache
// with zero new jobs; and killing a peer mid-run degrades to local
// computation without changing a single bit of the answer.

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/metrics"
)

type clusterCellView struct {
	State      string  `json:"state"`
	Cached     bool    `json:"cached"`
	Error      string  `json:"error"`
	Similarity float64 `json:"similarity"`
	Intersect  int     `json:"intersecting"`
	Candidates int     `json:"candidates"`
}

type clusterMatrixStatus struct {
	ID    string              `json:"id"`
	State string              `json:"state"`
	Cells [][]clusterCellView `json:"cells"`
}

type clusterJobReply struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
	Report *struct {
		Similarity   float64 `json:"similarity"`
		Intersecting int     `json:"intersecting"`
		Candidates   int     `json:"candidates"`
	} `json:"report"`
}

// clusterTraceView decodes GET /jobs/{id}/trace far enough to check the
// cross-node picture: which peers contributed spans and where they sit.
type clusterTraceView struct {
	Trace struct {
		TraceID string  `json:"trace_id"`
		TotalMs float64 `json:"total_ms"`
		Spans   []struct {
			Name       string  `json:"name"`
			Peer       string  `json:"peer"`
			StartMs    float64 `json:"start_ms"`
			DurationMs float64 `json:"duration_ms"`
		} `json:"spans"`
	} `json:"trace"`
}

// clusterHeatView decodes GET /datasets/{id}/heat.
type clusterHeatView struct {
	Dataset string `json:"dataset"`
	Local   bool   `json:"local"`
	Tiles   []struct {
		Tile  int   `json:"tile"`
		Reads int64 `json:"reads"`
		Bytes int64 `json:"bytes"`
	} `json:"tiles"`
	TotalReads int64 `json:"total_reads"`
	TotalBytes int64 `json:"total_bytes"`
}

// scrapeSeries fetches one node's Prometheus exposition and indexes it by
// rendered series name.
func scrapeSeries(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	exp, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse %s: %v", url, err)
	}
	vals := make(map[string]float64, len(exp.Samples))
	for _, s := range exp.Samples {
		vals[s.Series] = s.Value
	}
	return vals
}

func clusterPost(t *testing.T, url string, body any, dst any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(data, dst); err != nil {
			t.Fatalf("decode POST %s (%d): %v: %s", url, resp.StatusCode, err, data)
		}
	}
	return resp.StatusCode
}

func clusterGet(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func clusterIngest(t *testing.T, st *sccg.Store, image string, seed int64, tiles int) string {
	t.Helper()
	spec := sccg.Representative()
	spec.Name = image
	spec.Seed = seed
	spec.Tiles = tiles
	man, err := sccg.IngestDataset(st, sccg.GenerateDataset(spec))
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	return man.ID
}

func waitClusterJob(t *testing.T, base, id string) clusterJobReply {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var jr clusterJobReply
		if code := clusterGet(t, base+"/jobs/"+id, &jr); code != http.StatusOK {
			t.Fatalf("job poll = %d", code)
		}
		switch jr.State {
		case "done":
			return jr
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %s", id, jr.State, jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, jr.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func runClusterMatrix(t *testing.T, base string, ids []string) clusterMatrixStatus {
	t.Helper()
	var mst clusterMatrixStatus
	if code := clusterPost(t, base+"/matrix", map[string]any{"datasets": ids}, &mst); code != http.StatusAccepted {
		t.Fatalf("matrix submit on %s = %d", base, code)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for mst.State == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("matrix %s stuck", mst.ID)
		}
		time.Sleep(10 * time.Millisecond)
		clusterGet(t, base+"/matrix/"+mst.ID, &mst)
	}
	if mst.State != "done" {
		t.Fatalf("matrix %s ended %s: %+v", mst.ID, mst.State, mst.Cells)
	}
	return mst
}

// sameMatrix asserts two matrix answers are bit-identical cell by cell.
func sameMatrix(t *testing.T, label string, got, want clusterMatrixStatus) {
	t.Helper()
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("%s: grid %d rows, want %d", label, len(got.Cells), len(want.Cells))
	}
	for i := range got.Cells {
		for j := range got.Cells[i] {
			g, w := got.Cells[i][j], want.Cells[i][j]
			if i == j {
				continue
			}
			if g.State != "done" {
				t.Fatalf("%s: cell [%d][%d] = %q (%s)", label, i, j, g.State, g.Error)
			}
			if g.Similarity != w.Similarity || g.Intersect != w.Intersect || g.Candidates != w.Candidates {
				t.Fatalf("%s: cell [%d][%d] = (%v, %d, %d), single-node = (%v, %d, %d)",
					label, i, j, g.Similarity, g.Intersect, g.Candidates,
					w.Similarity, w.Intersect, w.Candidates)
			}
		}
	}
}

func TestClusterEndToEnd(t *testing.T) {
	const n = 3
	// Listeners first: every node must know the full membership before any
	// service starts, and a restart must keep its address.
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}

	dirs := make([]string, n)
	svcs := make([]*sccg.Service, n)
	handlers := make([]*atomic.Value, n)
	newSvc := func(i int) *sccg.Service {
		st, err := sccg.OpenStore(dirs[i])
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		return sccg.NewService(sccg.ServiceOptions{
			Devices:   1,
			Store:     st,
			Peers:     peers,
			Advertise: addrs[i],
		})
	}
	srvs := make([]*http.Server, n)
	for i := 0; i < n; i++ {
		dirs[i] = t.TempDir()
		svcs[i] = newSvc(i)
		handlers[i] = &atomic.Value{}
		handlers[i].Store(svcs[i].Handler())
		h := handlers[i]
		srvs[i] = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, r)
		})}
		go srvs[i].Serve(lns[i])
	}
	alive := []bool{true, true, true}
	defer func() {
		for i := 0; i < n; i++ {
			if alive[i] {
				srvs[i].Close()
				svcs[i].Close()
			}
		}
	}()

	// The single-node reference: same content, no peers.
	baseSt, err := sccg.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	baseline := sccg.NewService(sccg.ServiceOptions{Devices: 1, Store: baseSt})
	defer baseline.Close()
	baseLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseSrv := &http.Server{Handler: baseline.Handler()}
	go baseSrv.Serve(baseLn)
	defer baseSrv.Close()
	baseURL := "http://" + baseLn.Addr().String()

	// Ingest on node A only; the baseline gets identical content (content
	// addressing makes the IDs provably the same data).
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		id := clusterIngest(t, svcs[0].Store(), "slideC", seed, 2)
		if base := clusterIngest(t, baseSt, "slideC", seed, 2); base != id {
			t.Fatalf("content IDs diverged: %s vs %s", id, base)
		}
		ids = append(ids, id)
	}

	// /healthz reports membership.
	var hz struct {
		Cluster struct {
			Advertise string `json:"advertise"`
			Peers     []struct {
				Addr string `json:"addr"`
				Up   bool   `json:"up"`
			} `json:"peers"`
			Reachable int `json:"reachable"`
		} `json:"cluster"`
	}
	clusterGet(t, addrs[1]+"/healthz", &hz)
	if hz.Cluster.Advertise != addrs[1] || len(hz.Cluster.Peers) != 2 {
		t.Fatalf("healthz cluster block = %+v", hz.Cluster)
	}

	// Phase 1: a job on node B for a dataset only node A holds. B pulls the
	// dataset peer-to-peer (digest-verified) and computes locally.
	var jr clusterJobReply
	if code := clusterPost(t, addrs[1]+"/jobs", map[string]any{"dataset_id": ids[0]}, &jr); code != http.StatusAccepted {
		t.Fatalf("job on B = %d", code)
	}
	got := waitClusterJob(t, addrs[1], jr.ID)
	if _, ok := svcs[1].Store().Get(ids[0]); !ok {
		t.Fatal("node B did not pull the dataset into its store")
	}
	// The heat rollup mirrors the access pattern exactly: the compute read
	// each of the dataset's two tiles once; the peer pull (an import, not a
	// verified read) contributed nothing.
	var heat clusterHeatView
	if code := clusterGet(t, addrs[1]+"/datasets/"+ids[0]+"/heat", &heat); code != http.StatusOK {
		t.Fatalf("heat on B = %d", code)
	}
	if !heat.Local || len(heat.Tiles) != 2 {
		t.Fatalf("heat on B = local=%v tiles=%d, want local with 2 tiles", heat.Local, len(heat.Tiles))
	}
	for _, th := range heat.Tiles {
		if th.Reads != 1 || th.Bytes <= 0 {
			t.Fatalf("tile %d heat = %d reads / %d bytes, want exactly one verified read", th.Tile, th.Reads, th.Bytes)
		}
	}
	var bjr clusterJobReply
	clusterPost(t, baseURL+"/jobs", map[string]any{"dataset_id": ids[0]}, &bjr)
	want := waitClusterJob(t, baseURL, bjr.ID)
	if got.Report == nil || want.Report == nil || *got.Report != *want.Report {
		t.Fatalf("routed job report %+v != single-node %+v", got.Report, want.Report)
	}

	// The same job repeated on node C is a cluster-wide cache hit: no new
	// scheduler submission anywhere.
	before := submittedSum(svcs, alive)
	var rjr clusterJobReply
	code := clusterPost(t, addrs[2]+"/jobs", map[string]any{"dataset_id": ids[0]}, &rjr)
	if code != http.StatusOK || !rjr.Cached {
		t.Fatalf("repeat job on C = %d cached=%v, want 200/cached", code, rjr.Cached)
	}
	if after := submittedSum(svcs, alive); after != before {
		t.Fatalf("cluster cache hit still submitted jobs: %d -> %d", before, after)
	}

	// Phase 2: K-way matrix on B, bit-identical to the single-node answer.
	baseMx := runClusterMatrix(t, baseURL, ids)
	mx1 := runClusterMatrix(t, addrs[1], ids)
	sameMatrix(t, "matrix on B", mx1, baseMx)

	// Phase 3: the same matrix on C recomputes nothing, cluster-wide.
	before = submittedSum(svcs, alive)
	mx2 := runClusterMatrix(t, addrs[2], ids)
	sameMatrix(t, "repeat matrix on C", mx2, baseMx)
	if after := submittedSum(svcs, alive); after != before {
		t.Fatalf("repeat matrix submitted %d new jobs", after-before)
	}
	for i := range mx2.Cells {
		for j := range mx2.Cells[i] {
			if i != j && !mx2.Cells[i][j].Cached {
				t.Fatalf("repeat matrix cell [%d][%d] not served from cache", i, j)
			}
		}
	}

	// Phase 4: restart node B (same dir, same address). Its in-memory cache
	// is gone; the repeat matrix must still cost zero jobs anywhere — local
	// persisted entries plus the cluster-wide read-through cover every cell.
	svcs[1].Close()
	svcs[1] = newSvc(1)
	handlers[1].Store(svcs[1].Handler())
	before = submittedSum(svcs, alive)
	mx3 := runClusterMatrix(t, addrs[1], ids)
	sameMatrix(t, "matrix on restarted B", mx3, baseMx)
	if after := submittedSum(svcs, alive); after != before {
		t.Fatalf("restarted node recomputed %d cells", after-before)
	}

	// The query log survived the restart: the phase-1 peer pull is still on
	// record, attributed to node A and tied to a trace. So did the heat
	// rollup, flushed on shutdown.
	var qlr struct {
		Schema  string `json:"schema"`
		Records []struct {
			Kind     string `json:"kind"`
			Outcome  string `json:"outcome"`
			Peer     string `json:"peer"`
			TraceID  string `json:"trace_id"`
			Datasets []struct {
				ID string `json:"id"`
			} `json:"datasets"`
		} `json:"records"`
		Skipped map[string]int `json:"skipped"`
	}
	if code := clusterGet(t, addrs[1]+"/querylog?kind=pull", &qlr); code != http.StatusOK {
		t.Fatalf("querylog on restarted B = %d", code)
	}
	if qlr.Schema != "sccg-qlog/1" {
		t.Fatalf("querylog schema = %q", qlr.Schema)
	}
	for reason, count := range qlr.Skipped {
		if count != 0 {
			t.Fatalf("querylog skipped %d records (%s)", count, reason)
		}
	}
	foundPull := false
	for _, rec := range qlr.Records {
		if rec.Kind != "pull" || len(rec.Datasets) == 0 || rec.Datasets[0].ID != ids[0] {
			continue
		}
		foundPull = true
		if rec.Outcome != "pulled" || rec.Peer != addrs[0] || rec.TraceID == "" {
			t.Fatalf("pull record = outcome=%q peer=%q trace=%q, want pulled from %s with a trace ID",
				rec.Outcome, rec.Peer, rec.TraceID, addrs[0])
		}
	}
	if !foundPull {
		t.Fatalf("no pull record for %s survived B's restart", ids[0])
	}
	var heat2 clusterHeatView
	if code := clusterGet(t, addrs[1]+"/datasets/"+ids[0]+"/heat", &heat2); code != http.StatusOK {
		t.Fatalf("heat after restart = %d", code)
	}
	if heat2.TotalReads < 2 {
		t.Fatalf("heat after restart = %d total reads, want the pre-restart reads back", heat2.TotalReads)
	}

	// Phase 5: cross-node trace propagation. dA lives only on A, dB only on
	// B, so a cross job on C must pull one dataset from each peer — and the
	// job's trace must show both remote legs, peer-attributed and inside the
	// job's wall time.
	dA := clusterIngest(t, svcs[0].Store(), "traceX", 41, 2)
	dB := clusterIngest(t, svcs[1].Store(), "traceX", 42, 2)
	var cjr clusterJobReply
	if code := clusterPost(t, addrs[2]+"/jobs", map[string]any{"dataset_a": dA, "dataset_b": dB}, &cjr); code != http.StatusAccepted {
		t.Fatalf("cross job on C = %d", code)
	}
	waitClusterJob(t, addrs[2], cjr.ID)
	var tv clusterTraceView
	if code := clusterGet(t, addrs[2]+"/jobs/"+cjr.ID+"/trace", &tv); code != http.StatusOK {
		t.Fatalf("job trace on C = %d", code)
	}
	if tv.Trace.TraceID == "" {
		t.Fatal("job trace carries no trace ID")
	}
	remote := map[string]bool{}
	for _, sp := range tv.Trace.Spans {
		if sp.Peer == "" {
			continue
		}
		remote[sp.Peer] = true
		if sp.StartMs < 0 || sp.StartMs+sp.DurationMs > tv.Trace.TotalMs+1 {
			t.Fatalf("remote span %q from %s at [%.2f, %.2f]ms escapes job wall time %.2fms",
				sp.Name, sp.Peer, sp.StartMs, sp.StartMs+sp.DurationMs, tv.Trace.TotalMs)
		}
	}
	if !remote[addrs[0]] || !remote[addrs[1]] {
		t.Fatalf("remote spans from %v, want both %s and %s", remote, addrs[0], addrs[1])
	}

	// Phase 6: metrics federation. One exposition for the whole cluster:
	// counters sum across the three nodes, per-node gauges stay attributable
	// via peer labels, and the merged text is still parseable v0.0.4.
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += scrapeSeries(t, addrs[i]+"/metrics")["sccgd_jobs_submitted_total"]
	}
	fresp, err := http.Get(addrs[0] + "/metrics?cluster=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := fresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("federated Content-Type = %q", ct)
	}
	fexp, err := metrics.ParseText(fresp.Body)
	fresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fexp.Skipped != 0 {
		t.Fatalf("federated exposition had %d unparseable lines", fexp.Skipped)
	}
	fed := make(map[string]float64, len(fexp.Samples))
	for _, s := range fexp.Samples {
		fed[s.Series] = s.Value
	}
	if got := fed["sccgd_jobs_submitted_total"]; got != sum {
		t.Fatalf("federated sccgd_jobs_submitted_total = %v, per-node sum = %v", got, sum)
	}
	for i := 0; i < n; i++ {
		series := `sccgd_jobs_queued{peer="` + addrs[i] + `"}`
		if _, ok := fed[series]; !ok {
			t.Fatalf("federated exposition lacks %s", series)
		}
	}

	// Phase 7: fresh datasets on A, matrix on B, and node C dies mid-run.
	// The run degrades to local computation and the answer doesn't move.
	var ids2 []string
	for seed := int64(4); seed <= 6; seed++ {
		id := clusterIngest(t, svcs[0].Store(), "slideC", seed, 2)
		clusterIngest(t, baseSt, "slideC", seed, 2)
		ids2 = append(ids2, id)
	}
	baseMx2 := runClusterMatrix(t, baseURL, ids2)

	var kill clusterMatrixStatus
	if code := clusterPost(t, addrs[1]+"/matrix", map[string]any{"datasets": ids2}, &kill); code != http.StatusAccepted {
		t.Fatalf("degrade matrix submit = %d", code)
	}
	srvs[2].Close()
	svcs[2].Close()
	alive[2] = false
	deadline := time.Now().Add(5 * time.Minute)
	for kill.State == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("degraded matrix stuck: %+v", kill.Cells)
		}
		time.Sleep(10 * time.Millisecond)
		clusterGet(t, addrs[1]+"/matrix/"+kill.ID, &kill)
	}
	if kill.State != "done" {
		t.Fatalf("matrix with a dead peer ended %s: %+v", kill.State, kill.Cells)
	}
	sameMatrix(t, "matrix with a dead peer", kill, baseMx2)
}

func submittedSum(svcs []*sccg.Service, alive []bool) int64 {
	var sum int64
	for i, svc := range svcs {
		if alive[i] {
			sum += svc.Scheduler().Stats().Submitted
		}
	}
	return sum
}
