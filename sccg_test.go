package sccg_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/pathology"
)

func trimmedRep(tiles int) *sccg.Dataset {
	spec := sccg.Representative()
	spec.Tiles = tiles
	return sccg.GenerateDataset(spec)
}

func TestEngineGPUAndCPUAgree(t *testing.T) {
	d := trimmedRep(2)
	gpu := sccg.NewEngine(sccg.Options{})
	cpu := sccg.NewEngine(sccg.Options{DisableGPU: true})
	for _, tp := range d.Pairs {
		gs, gi, gc := gpu.CrossComparePolygons(tp.A, tp.B)
		cs, ci, cc := cpu.CrossComparePolygons(tp.A, tp.B)
		if gi != ci || gc != cc || math.Abs(gs-cs) > 1e-12 {
			t.Fatalf("backends disagree: gpu %v/%d/%d vs cpu %v/%d/%d", gs, gi, gc, cs, ci, cc)
		}
		if gs <= 0.3 || gs >= 1 {
			t.Fatalf("implausible similarity %v", gs)
		}
	}
	if gpu.Device() == nil || gpu.Device().Launches() == 0 {
		t.Fatal("GPU engine did not use its device")
	}
	if cpu.Device() != nil {
		t.Fatal("CPU engine has a device")
	}
}

func TestEnginePipelineMatchesDirect(t *testing.T) {
	d := trimmedRep(2)
	eng := sccg.NewEngine(sccg.Options{})
	report, err := eng.CrossCompareDataset(sccg.EncodeDataset(d))
	if err != nil {
		t.Fatal(err)
	}
	// Direct per-tile comparison must agree on pair counts with the full
	// text-parsing pipeline.
	var wantHits int
	direct := sccg.NewEngine(sccg.Options{})
	for _, tp := range d.Pairs {
		_, hits, _ := direct.CrossComparePolygons(tp.A, tp.B)
		wantHits += hits
	}
	if report.Intersecting != wantHits {
		t.Fatalf("pipeline found %d intersecting pairs, direct %d", report.Intersecting, wantHits)
	}
}

func TestParseEncodeRoundTrip(t *testing.T) {
	d := trimmedRep(1)
	data := sccg.EncodePolygons(d.Pairs[0].A)
	polys, err := sccg.ParsePolygons(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(polys) != len(d.Pairs[0].A) {
		t.Fatalf("parsed %d, want %d", len(polys), len(d.Pairs[0].A))
	}
}

func TestExactAreasAgainstMatchPairs(t *testing.T) {
	d := trimmedRep(1)
	tp := d.Pairs[0]
	pairs := sccg.MatchPairs(tp.A, tp.B)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	eng := sccg.NewEngine(sccg.Options{})
	got := eng.ComputeAreas(pairs)
	for i, pr := range pairs {
		if got[i] != sccg.ExactAreas(pr.P, pr.Q) {
			t.Fatalf("pair %d: PixelBox disagrees with exact overlay", i)
		}
	}
}

func TestCorpusAccessors(t *testing.T) {
	if len(sccg.Corpus()) != 18 {
		t.Fatal("corpus size")
	}
	if sccg.Representative().Name != "oligoastroIII_1" {
		t.Fatal("representative name")
	}
}

func TestNewPolygonValidates(t *testing.T) {
	if _, err := sccg.NewPolygon([]sccg.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}, {X: 1, Y: -1}}); err == nil {
		t.Fatal("diagonal polygon accepted")
	}
	p, err := sccg.NewPolygon([]sccg.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}})
	if err != nil || p.Area() != 4 {
		t.Fatalf("square rejected: %v", err)
	}
}

func TestDatasetGeneration(t *testing.T) {
	spec := pathology.Corpus()[0]
	spec.Tiles = 2
	d := sccg.GenerateDataset(spec)
	tasks := sccg.EncodeDataset(d)
	if len(tasks) != 2 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if len(tasks[0].RawA) == 0 || len(tasks[0].RawB) == 0 {
		t.Fatal("empty task payload")
	}
}
