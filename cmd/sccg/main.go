// Command sccg cross-compares two polygon result sets with the SCCG
// pipeline and prints the Jaccard similarity report.
//
// Input is either a pair of polygon text files (one image tile each):
//
//	sccg -a set1.poly -b set2.poly
//
// or a synthetic corpus dataset by index (tile files are generated in
// memory):
//
//	sccg -dataset 5 -migration
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/pathology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sccg: ")

	var (
		fileA     = flag.String("a", "", "polygon text file for result set A")
		fileB     = flag.String("b", "", "polygon text file for result set B")
		dataset   = flag.Int("dataset", -1, "synthetic corpus dataset index (0-17) instead of files")
		noGPU     = flag.Bool("no-gpu", false, "aggregate with PixelBox-CPU instead of the simulated GPU")
		migration = flag.Bool("migration", false, "enable dynamic task migration")
		workers   = flag.Int("workers", 0, "CPU worker count (default GOMAXPROCS)")
	)
	flag.Parse()

	eng := sccg.NewEngine(sccg.Options{
		DisableGPU: *noGPU,
		Workers:    *workers,
		Migration:  *migration,
	})

	var tasks []sccg.FileTask
	switch {
	case *dataset >= 0:
		corpus := sccg.Corpus()
		if *dataset >= len(corpus) {
			log.Fatalf("dataset index %d out of range (corpus has %d)", *dataset, len(corpus))
		}
		spec := corpus[*dataset]
		fmt.Printf("generating dataset %q (%d tiles)...\n", spec.Name, spec.Tiles)
		tasks = sccg.EncodeDataset(pathology.Generate(spec))
	case *fileA != "" && *fileB != "":
		rawA, err := os.ReadFile(*fileA)
		if err != nil {
			log.Fatal(err)
		}
		rawB, err := os.ReadFile(*fileB)
		if err != nil {
			log.Fatal(err)
		}
		tasks = []sccg.FileTask{{Image: *fileA, Tile: 0, RawA: rawA, RawB: rawB}}
	default:
		flag.Usage()
		os.Exit(2)
	}

	report, err := eng.CrossCompareDataset(tasks)
	if err != nil {
		log.Fatal(err)
	}
	st := report.Stats
	fmt.Printf("similarity J'        : %.4f\n", report.Similarity)
	fmt.Printf("candidate pairs      : %d (MBR-intersecting)\n", report.Candidates)
	fmt.Printf("intersecting pairs   : %d\n", report.Intersecting)
	fmt.Printf("tiles processed      : %d\n", st.TilesProcessed)
	fmt.Printf("pairs on GPU / CPU   : %d / %d\n", st.PairsOnGPU, st.PairsOnCPU)
	if st.TasksToCPU+st.TasksToGPU > 0 {
		fmt.Printf("migrated tasks       : %d to CPU, %d to GPU\n", st.TasksToCPU, st.TasksToGPU)
	}
	fmt.Printf("wall time            : %v\n", st.WallTime)
	if dev := eng.Device(); dev != nil {
		fmt.Printf("device busy (model)  : %.6fs over %d launches\n", dev.BusySeconds(), dev.Launches())
	}
}
