// Command datagen materialises the synthetic pathology corpus as polygon
// text files on disk, two files per image tile (one per segmentation result
// set), in the directory layout the paper describes (§2.1): a group of
// polygon files per whole image, one file per tile.
//
//	datagen -out ./data            # all 18 datasets
//	datagen -out ./data -dataset 5 # just the representative dataset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/pathology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		out     = flag.String("out", "data", "output directory")
		dataset = flag.Int("dataset", -1, "single dataset index (default: all)")
	)
	flag.Parse()

	specs := sccg.Corpus()
	if *dataset >= 0 {
		if *dataset >= len(specs) {
			log.Fatalf("dataset index %d out of range", *dataset)
		}
		specs = specs[*dataset : *dataset+1]
	}

	var totalBytes int64
	var totalPolys int
	for _, spec := range specs {
		d := pathology.Generate(spec)
		dir := filepath.Join(*out, spec.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, tp := range d.Pairs {
			for set, polys := range map[string][]*sccg.Polygon{"1": tp.A, "2": tp.B} {
				name := filepath.Join(dir, fmt.Sprintf("tile_%04d_alg%s.poly", tp.Index, set))
				data := sccg.EncodePolygons(polys)
				if err := os.WriteFile(name, data, 0o644); err != nil {
					log.Fatal(err)
				}
				totalBytes += int64(len(data))
				totalPolys += len(polys)
			}
		}
		a, b := d.NumPolygons()
		fmt.Printf("%-18s %3d tiles  %6d + %6d polygons\n", spec.Name, spec.Tiles, a, b)
	}
	fmt.Printf("wrote %d polygons, %.1f MiB under %s\n",
		totalPolys, float64(totalBytes)/(1<<20), *out)
}
