// Command profile reproduces the paper's Fig. 2: the execution-time
// decomposition of cross-comparing queries inside the spatial DBMS, for
// both the unoptimised (Fig. 1a) and optimised (Fig. 1b) query forms, on a
// single core.
//
//	profile            # representative dataset
//	profile -dataset 2 # another corpus dataset
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
	"repro/internal/pathology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profile: ")

	dataset := flag.Int("dataset", 5, "corpus dataset index")
	flag.Parse()

	corpus := sccg.Corpus()
	if *dataset < 0 || *dataset >= len(corpus) {
		log.Fatalf("dataset index %d out of range", *dataset)
	}
	spec := corpus[*dataset]
	d := pathology.Generate(spec)
	res, err := experiments.Fig2(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 2 — query decomposition on %q (single core)\n\n", spec.Name)
	fmt.Print(res.Render())
	fmt.Printf("\nsimilarity J' = %.4f over %d intersecting pairs (%d candidates)\n",
		res.Optimized.Similarity, res.Optimized.IntersectingPairs, res.Optimized.CandidatePairs)
}
