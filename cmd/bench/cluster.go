package main

// The cluster_matrix experiment: boot a 3-node in-process sccgd cluster
// (real TCP listeners between the nodes), ingest the corpus on node A only,
// and run a K-way matrix on node B — which pulls every dataset peer-to-peer
// and routes cells by rendezvous placement — then repeat the matrix on node
// C, which must be answered entirely from the cluster-wide result cache.
// The record carries the cold and repeat wall times, cross-checks the
// cluster answer cell-by-cell against a single-node run (bit-identical or
// the record says so), and counts the scheduler jobs the repeat cost (the
// headline number: 0).

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro"
)

type benchNode struct {
	svc *sccg.Service
	srv *http.Server
}

func benchCluster(tiles int) (nodes []*benchNode, cleanup func(), err error) {
	const n = 3
	var lns []net.Listener
	var addrs []string
	var dirs []string
	cleanup = func() {
		for _, nd := range nodes {
			nd.srv.Close()
			nd.svc.Close()
		}
		for _, ln := range lns[len(nodes):] {
			ln.Close()
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	for i := 0; i < n; i++ {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			cleanup()
			return nil, nil, lerr
		}
		lns = append(lns, ln)
		addrs = append(addrs, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		dir, derr := os.MkdirTemp("", "bench-cluster-*")
		if derr != nil {
			cleanup()
			return nil, nil, derr
		}
		dirs = append(dirs, dir)
		st, serr := sccg.OpenStore(dir)
		if serr != nil {
			cleanup()
			return nil, nil, serr
		}
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		svc := sccg.NewService(sccg.ServiceOptions{
			Devices:   1,
			Store:     st,
			Peers:     peers,
			Advertise: addrs[i],
		})
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(lns[i])
		nodes = append(nodes, &benchNode{svc: svc, srv: srv})
	}
	_ = tiles
	return nodes, cleanup, nil
}

func benchClusterIngest(svc *sccg.Service, seed int64, tiles int) (string, error) {
	spec := sccg.Representative()
	spec.Name = "bench-cluster"
	spec.Seed = seed
	spec.Tiles = tiles
	man, err := sccg.IngestDataset(svc.Store(), sccg.GenerateDataset(spec))
	if err != nil {
		return "", err
	}
	return man.ID, nil
}

func benchClusterMatrix(svc *sccg.Service, ids []string) (sccg.MatrixStatus, error) {
	id, err := svc.SubmitMatrix(ids)
	if err != nil {
		return sccg.MatrixStatus{}, err
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		mst, ok := svc.Matrix(id)
		if !ok {
			return sccg.MatrixStatus{}, fmt.Errorf("matrix %s vanished", id)
		}
		if mst.State != "running" {
			if mst.State != "done" {
				return mst, fmt.Errorf("matrix %s ended %s", id, mst.State)
			}
			return mst, nil
		}
		if time.Now().After(deadline) {
			return mst, fmt.Errorf("matrix %s stuck", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func clusterRecords(short bool) ([]experimentRecord, error) {
	tiles := 3
	if short {
		tiles = 2
	}

	nodes, cleanup, err := benchCluster(tiles)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Single-node reference over identical content.
	baseDir, err := os.MkdirTemp("", "bench-cluster-base-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(baseDir)
	baseSt, err := sccg.OpenStore(baseDir)
	if err != nil {
		return nil, err
	}
	baseline := sccg.NewService(sccg.ServiceOptions{Devices: 1, Store: baseSt})
	defer baseline.Close()

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		id, err := benchClusterIngest(nodes[0].svc, seed, tiles)
		if err != nil {
			return nil, err
		}
		if _, err := benchClusterIngest(baseline, seed, tiles); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	baseMx, err := benchClusterMatrix(baseline, ids)
	if err != nil {
		return nil, err
	}

	// Cold: node B holds nothing; every dataset is pulled, cells fan out.
	start := time.Now()
	coldMx, err := benchClusterMatrix(nodes[1].svc, ids)
	if err != nil {
		return nil, err
	}
	coldSecs := time.Since(start).Seconds()

	identical := 1.0
	for i := range coldMx.Cells {
		for j := range coldMx.Cells[i] {
			if i == j {
				continue
			}
			g, w := coldMx.Cells[i][j], baseMx.Cells[i][j]
			if g.Similarity != w.Similarity || g.Intersect != w.Intersect || g.Candidates != w.Candidates {
				identical = 0
			}
		}
	}

	jobsBefore := int64(0)
	for _, nd := range nodes {
		jobsBefore += nd.svc.Scheduler().Stats().Submitted
	}
	start = time.Now()
	repeatMx, err := benchClusterMatrix(nodes[2].svc, ids)
	if err != nil {
		return nil, err
	}
	repeatSecs := time.Since(start).Seconds()
	jobsAfter := int64(0)
	for _, nd := range nodes {
		jobsAfter += nd.svc.Scheduler().Stats().Submitted
	}
	for i := range repeatMx.Cells {
		for j := range repeatMx.Cells[i] {
			if i == j {
				continue
			}
			g, w := repeatMx.Cells[i][j], baseMx.Cells[i][j]
			if g.Similarity != w.Similarity || g.Intersect != w.Intersect || g.Candidates != w.Candidates {
				identical = 0
			}
		}
	}

	cells := float64(len(ids) * (len(ids) - 1) / 2)
	return []experimentRecord{
		{
			Name:     "cluster_matrix",
			WallSecs: coldSecs,
			Values: map[string]float64{
				"nodes":                    3,
				"cells":                    cells,
				"similarity_bit_identical": identical,
				"pulled_datasets":          float64(nodes[1].svc.Store().Len()),
				"repeat_wall_secs":         repeatSecs,
				"repeat_jobs_cluster_wide": float64(jobsAfter - jobsBefore),
				"repeat_speedup_over_cold": coldSecs / repeatSecs,
			},
		},
	}, nil
}
