package main

// Progressive-matrix benchmark: a 6-dataset corpus skewed into two spatially
// disjoint clusters, compared as a full exact matrix and as a top_k=3
// progressive run over the same store. The record captures how much exact
// work the planner's bounds avoided (the cross-cluster cells are provably
// empty) and that every cell the progressive run did answer is bit-identical
// to the full run's.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/compare"
	"repro/internal/pathology"
	"repro/internal/sched"
	"repro/internal/store"
)

// matrixClusterShift separates the two corpus clusters far enough that no
// per-tile stat windows overlap across them.
const matrixClusterShift = 1 << 20

// ingestSkewedCorpus stores 6 variants sharing tile keys: seeds 1-3 at the
// origin, seeds 4-6 translated into a far cluster.
func ingestSkewedCorpus(st *store.Store, tiles int) ([]string, error) {
	var ids []string
	for seed := int64(1); seed <= 6; seed++ {
		spec := pathology.Representative()
		spec.Name = "bench-matrix"
		spec.Seed = seed
		spec.Tiles = tiles
		d := pathology.Generate(spec)
		its := make([]store.IngestTile, 0, len(d.Pairs))
		var dx, dy int32
		if seed > 3 {
			dx, dy = matrixClusterShift, matrixClusterShift
		}
		for _, tp := range d.Pairs {
			it := store.IngestTile{Image: tp.Image, Tile: tp.Index}
			for _, p := range tp.A {
				it.A = append(it.A, p.Translate(dx, dy))
			}
			for _, p := range tp.B {
				it.B = append(it.B, p.Translate(dx, dy))
			}
			its = append(its, it)
		}
		man, err := st.Ingest(spec.Name, its)
		if err != nil {
			return nil, err
		}
		ids = append(ids, man.ID)
	}
	return ids, nil
}

// progressiveRecords runs the full-vs-top_k matrix experiment and returns
// its experiment records.
func progressiveRecords(short bool) ([]experimentRecord, error) {
	dir, err := os.MkdirTemp("", "sccg-bench-matrix")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	tiles := 2
	if short {
		tiles = 1
	}
	ids, err := ingestSkewedCorpus(st, tiles)
	if err != nil {
		return nil, err
	}

	sc := sched.New(sched.Config{Devices: 2})
	defer sc.Close()
	m := compare.NewManager(compare.ManagerConfig{
		Scheduler: sc,
		Submit: func(idA, idB, _ string) (compare.SubmitOutcome, error) {
			dsA, err := st.OpenDataset(idA)
			if err != nil {
				return compare.SubmitOutcome{}, err
			}
			dsB, err := st.OpenDataset(idB)
			if err != nil {
				return compare.SubmitOutcome{}, err
			}
			src, match := compare.NewSource(dsA, dsB)
			id, err := sc.SubmitSource("cell", src)
			if err != nil {
				return compare.SubmitOutcome{}, err
			}
			return compare.SubmitOutcome{
				JobID:      id,
				Tiles:      len(match.Pairs),
				UnmatchedA: len(match.OnlyA),
				UnmatchedB: len(match.OnlyB),
			}, nil
		},
		Bound: func(idA, idB string) (compare.CellBound, error) {
			return compare.BoundPair(st, idA, idB)
		},
		Estimate: func(idA, idB string) (compare.CellEstimate, error) {
			return compare.EstimatePair(st, idA, idB)
		},
	})
	defer m.Close()

	runMatrix := func(spec compare.RunSpec) (compare.Status, float64, error) {
		start := time.Now()
		run, err := m.StartSpec(spec, nil)
		if err != nil {
			return compare.Status{}, 0, err
		}
		select {
		case <-run.Done():
		case <-time.After(5 * time.Minute):
			return compare.Status{}, 0, fmt.Errorf("matrix run %s did not finish", run.ID())
		}
		st := run.Status()
		if st.State != compare.RunDone {
			return compare.Status{}, 0, fmt.Errorf("matrix run ended %s", st.State)
		}
		return st, time.Since(start).Seconds(), nil
	}

	full, fullSecs, err := runMatrix(compare.RunSpec{Name: "full", Datasets: ids})
	if err != nil {
		return nil, err
	}
	topk, topkSecs, err := runMatrix(compare.RunSpec{Name: "topk", Datasets: ids, TopK: 3, Estimate: true})
	if err != nil {
		return nil, err
	}

	identical := 1.0
	for i := range topk.Cells {
		for j := range topk.Cells[i] {
			c := topk.Cells[i][j]
			if c.State != compare.CellDone {
				continue
			}
			o := full.Cells[i][j]
			if c.Similarity != o.Similarity || c.Intersect != o.Intersect || c.Candidates != o.Candidates {
				identical = 0
			}
		}
	}
	avoided := float64(topk.SkippedCells+topk.BoundedCells) / float64(topk.PlannedCells)

	return []experimentRecord{
		{
			Name:     "matrix_full",
			WallSecs: fullSecs,
			Values: map[string]float64{
				"cells":       float64(full.PlannedCells),
				"cells_exact": float64(full.ExactCells),
			},
		},
		{
			Name:     "matrix_topk",
			WallSecs: topkSecs,
			Values: map[string]float64{
				"top_k":                    3,
				"cells":                    float64(topk.PlannedCells),
				"cells_exact":              float64(topk.ExactCells),
				"cells_skipped":            float64(topk.SkippedCells),
				"cells_bounded":            float64(topk.BoundedCells),
				"exact_cells_avoided":      avoided,
				"similarity_bit_identical": identical,
			},
		},
	}, nil
}
