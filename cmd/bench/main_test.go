package main

// Tests for the -json run record: the schema is what CI's bench-smoke step
// and the committed BENCH_PR<n>.json trajectory depend on, so its shape is
// pinned here.

import (
	"encoding/json"
	"testing"
)

func TestBenchRecordShort(t *testing.T) {
	rec, err := benchRecord(true, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", rec.Schema, benchSchema)
	}
	if !rec.Short || rec.Tiles != 4 {
		t.Errorf("short record = short:%v tiles:%d, want short run over 4 tiles", rec.Short, rec.Tiles)
	}
	if rec.CreatedAt == "" || rec.GoVersion == "" {
		t.Error("record missing created_at or go_version")
	}

	want := map[string]bool{
		"pipeline_gpu": false, "pipeline_cpu": false, "pipeline_hybrid": false,
		"pipeline_invariants": false, "kernel_pixelbox_gpu": false, "kernel_pixelbox_cpu": false,
		"matrix_full": false, "matrix_topk": false, "cluster_matrix": false,
		"trace_overhead": false, "qos_isolation": false,
	}
	var sims []float64
	for _, e := range rec.Experiments {
		if _, ok := want[e.Name]; !ok {
			t.Errorf("unexpected experiment %q", e.Name)
			continue
		}
		if want[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		want[e.Name] = true
		if e.WallSecs < 0 {
			t.Errorf("%s: negative wall time %v", e.Name, e.WallSecs)
		}
		if sim, ok := e.Values["similarity"]; ok {
			sims = append(sims, sim)
			if sim <= 0 || sim > 1 {
				t.Errorf("%s: similarity %v out of (0, 1]", e.Name, sim)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("record missing experiment %q", name)
		}
	}

	// The progressive matrix experiment must avoid exact work on the skewed
	// corpus without drifting from the full run on the cells it answers.
	for _, e := range rec.Experiments {
		if e.Name != "matrix_topk" {
			continue
		}
		if e.Values["exact_cells_avoided"] <= 0 {
			t.Errorf("progressive run avoided no exact cells: %v", e.Values)
		}
		if e.Values["cells_exact"]+e.Values["cells_skipped"]+e.Values["cells_bounded"] != e.Values["cells"] {
			t.Errorf("progressive cell accounting inconsistent: %v", e.Values)
		}
		if e.Values["similarity_bit_identical"] != 1 {
			t.Errorf("progressive cells drifted from the full matrix: %v", e.Values)
		}
	}

	// The cluster run must match single-node bit-for-bit, have replicated the
	// corpus onto the serving node, and answer the repeat without a single
	// new scheduler job anywhere in the cluster.
	for _, e := range rec.Experiments {
		if e.Name != "cluster_matrix" {
			continue
		}
		if e.Values["similarity_bit_identical"] != 1 {
			t.Errorf("cluster cells drifted from single-node: %v", e.Values)
		}
		if e.Values["pulled_datasets"] != 3 {
			t.Errorf("serving node pulled %v datasets, want 3", e.Values["pulled_datasets"])
		}
		if e.Values["repeat_jobs_cluster_wide"] != 0 {
			t.Errorf("matrix repeat cost %v new jobs, want 0", e.Values["repeat_jobs_cluster_wide"])
		}
	}

	// The trace-overhead A/B must have run both arms; the ratio itself is
	// noisy at smoke scale, so only its presence and sanity are pinned here
	// (the committed full-run records carry the headline number).
	for _, e := range rec.Experiments {
		if e.Name != "trace_overhead" {
			continue
		}
		if e.Values["traced_wall_secs"] <= 0 || e.Values["untraced_wall_secs"] <= 0 {
			t.Errorf("trace overhead arms missing: %v", e.Values)
		}
		if _, ok := e.Values["overhead_ratio"]; !ok {
			t.Errorf("trace overhead record lacks overhead_ratio: %v", e.Values)
		}
	}

	// The QoS isolation experiment is the PR-10 acceptance gate: the
	// interactive p99 queue wait under a batch flood stays within 5x of
	// unloaded, and the flood changes no result.
	for _, e := range rec.Experiments {
		if e.Name != "qos_isolation" {
			continue
		}
		if r := e.Values["p99_wait_ratio"]; r <= 0 || r >= 5 {
			t.Errorf("interactive p99 wait ratio %v outside (0, 5)", r)
		}
		if e.Values["similarity_bit_identical"] != 1 {
			t.Errorf("qos flood changed probe results: %v", e.Values)
		}
	}

	// The pipeline configurations are bit-deterministic: every similarity in
	// the record must be identical, and the record must say so.
	for _, sim := range sims {
		if sim != sims[0] {
			t.Errorf("similarities differ across configurations: %v", sims)
		}
	}
	for _, e := range rec.Experiments {
		if e.Name == "pipeline_invariants" && e.Values["similarity_bit_identical"] != 1 {
			t.Errorf("record reports similarity drift: %v", e.Values)
		}
	}

	// The record must round-trip as JSON — it is the wire format CI uploads.
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back runRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("record does not round-trip: %v", err)
	}
	if back.Schema != rec.Schema || len(back.Experiments) != len(rec.Experiments) {
		t.Errorf("round-trip lost data: %+v", back)
	}
}
