// Command bench regenerates every table and figure of the paper's
// evaluation section (§5) and prints the rows in the paper's layout.
// EXPERIMENTS.md records the paper-reported values next to a captured run
// of this tool.
//
//	bench                 # everything
//	bench -only fig8      # a single experiment (fig2|fig7|fig8|fig9|fig10|table1|fig11|fig12|hybrid)
//	bench -only hybrid -gpus 2 -cpu-aggs 4   # hybrid co-execution scaling
//	bench -json           # machine-readable run record on stdout (see README)
//	bench -json -short    # reduced workload, for CI smoke and quick checks
//
// The -json record is the unit of the repo's benchmark trajectory: one
// BENCH_PR<n>.json per landed PR, committed at the root, lets throughput
// regressions be spotted by diffing records instead of rerunning old
// revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/pixelbox"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	only := flag.String("only", "", "run a single experiment")
	gpus := flag.Int("gpus", 2, "hybrid experiment: simulated GPU count")
	cpuAggs := flag.Int("cpu-aggs", 4, "hybrid experiment: PixelBox-CPU aggregator count")
	jsonOut := flag.Bool("json", false, "emit a machine-readable run record to stdout instead of tables")
	short := flag.Bool("short", false, "with -json: reduced workload for smoke runs")
	flag.Parse()

	if *jsonOut {
		rec, err := benchRecord(*short, *gpus, *cpuAggs)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}

	rep := pathology.Generate(pathology.Representative())
	// The subset workload of §5.2-5.4: pairs filtered from two
	// representative tiles (the paper uses 15724 pairs from two
	// representative polygon files).
	subsetPairs := subset(rep, 3)

	if want("fig2") {
		runFig2(rep)
	}
	if want("fig7") {
		runFig7(rep)
	}
	if want("fig8") {
		runFig8(subsetPairs)
	}
	if want("fig9") {
		runFig9(subsetPairs)
	}
	if want("fig10") {
		runFig10(subsetPairs)
	}
	var cal experiments.Calibration
	if want("table1") || want("fig11") {
		cal = experiments.Calibrate(rep)
	}
	if want("table1") {
		runTable1(rep, cal)
	}
	if want("fig11") {
		runFig11(cal)
	}
	if want("fig12") {
		runFig12()
	}
	if want("hybrid") {
		runHybrid(rep, *gpus, *cpuAggs)
	}
}

// runRecord is the machine-readable benchmark record emitted by -json: one
// headline measurement set, stable across PRs, so committed BENCH_PR<n>.json
// files form a comparable trajectory. Schema changes bump the version.
type runRecord struct {
	Schema      string             `json:"schema"`
	CreatedAt   string             `json:"created_at"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Short       bool               `json:"short"`
	Dataset     string             `json:"dataset"`
	Tiles       int                `json:"tiles"`
	Experiments []experimentRecord `json:"experiments"`
}

// experimentRecord is one timed configuration inside a run record. Values
// holds the experiment's headline scalars (pairs/sec, similarity, ...) keyed
// by stable names.
type experimentRecord struct {
	Name     string             `json:"name"`
	WallSecs float64            `json:"wall_secs"`
	Values   map[string]float64 `json:"values"`
}

const benchSchema = "sccg-bench/1"

// benchRecord times the pipeline's three canonical configurations (GPU-only,
// CPU-only, hybrid work-stealing) over the representative dataset and the
// bare PixelBox kernel over the §5.2 subset pairs. Similarity must be
// bit-identical across pipeline configurations — the record carries it per
// experiment plus a bit_identical flag so a trajectory diff catches both
// performance and correctness drift.
func benchRecord(short bool, gpus, cpuAggs int) (*runRecord, error) {
	spec := pathology.Representative()
	d := pathology.Generate(spec)
	if short && len(d.Pairs) > 4 {
		d.Pairs = d.Pairs[:4]
	}
	rec := &runRecord{
		Schema:     benchSchema,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      short,
		Dataset:    spec.Name,
		Tiles:      len(d.Pairs),
	}
	tasks := pipeline.EncodeDataset(d)

	configs := []struct {
		name string
		cfg  pipeline.Config
	}{
		{"pipeline_gpu", pipeline.Config{Devices: gpu.NewDevices(1, gpu.GTX580())}},
		{"pipeline_cpu", pipeline.Config{}},
		{"pipeline_hybrid", pipeline.Config{
			Devices:        gpu.NewDevices(gpus, gpu.GTX580()),
			CPUAggregators: cpuAggs,
			BatchPairs:     256,
		}},
	}
	var baseSim float64
	identical := 1.0
	for i, c := range configs {
		res, err := pipeline.Run(tasks, c.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		secs := res.Stats.WallTime.Seconds()
		if i == 0 {
			baseSim = res.Similarity
		} else if res.Similarity != baseSim {
			identical = 0
		}
		rec.Experiments = append(rec.Experiments, experimentRecord{
			Name:     c.name,
			WallSecs: secs,
			Values: map[string]float64{
				"pairs_filtered": float64(res.Stats.PairsFiltered),
				"pairs_per_sec":  float64(res.Stats.PairsFiltered) / secs,
				"pairs_gpu":      float64(res.Stats.PairsOnGPU),
				"pairs_cpu":      float64(res.Stats.PairsOnCPU),
				"similarity":     res.Similarity,
			},
		})
	}
	rec.Experiments = append(rec.Experiments, experimentRecord{
		Name:   "pipeline_invariants",
		Values: map[string]float64{"similarity_bit_identical": identical},
	})

	// The bare kernel over the subset workload: PixelBox on the device model
	// vs PixelBox-CPU, no pipeline around them.
	subTiles := 3
	if short {
		subTiles = 2
	}
	pairs := subset(d, subTiles)
	start := time.Now()
	_, _, devSecs := pixelbox.RunGPU(gpu.NewDevice(gpu.GTX580()), pairs, pixelbox.Config{})
	gpuSecs := time.Since(start).Seconds()
	rec.Experiments = append(rec.Experiments, experimentRecord{
		Name:     "kernel_pixelbox_gpu",
		WallSecs: gpuSecs,
		Values: map[string]float64{
			"pairs":          float64(len(pairs)),
			"pairs_per_sec":  float64(len(pairs)) / gpuSecs,
			"device_seconds": devSecs,
		},
	})
	start = time.Now()
	pixelbox.RunCPUParallel(pairs, pixelbox.CPUConfig{})
	cpuSecs := time.Since(start).Seconds()
	rec.Experiments = append(rec.Experiments, experimentRecord{
		Name:     "kernel_pixelbox_cpu",
		WallSecs: cpuSecs,
		Values: map[string]float64{
			"pairs":         float64(len(pairs)),
			"pairs_per_sec": float64(len(pairs)) / cpuSecs,
		},
	})

	// Progressive matrix execution over a skewed corpus: how much exact work
	// the plan-phase bounds avoid, with exactness cross-checked per cell.
	prog, err := progressiveRecords(short)
	if err != nil {
		return nil, fmt.Errorf("matrix experiment: %w", err)
	}
	rec.Experiments = append(rec.Experiments, prog...)
	clus, err := clusterRecords(short)
	if err != nil {
		return nil, fmt.Errorf("cluster experiment: %w", err)
	}
	rec.Experiments = append(rec.Experiments, clus...)
	ovh, err := traceOverheadRecords(short)
	if err != nil {
		return nil, fmt.Errorf("trace overhead experiment: %w", err)
	}
	rec.Experiments = append(rec.Experiments, ovh...)
	// Interactive isolation under a batch flood: the multi-tenant QoS
	// scheduler's headline guarantee (PR 10 acceptance bound: p99 ratio < 5).
	qos, err := qosIsolationRecords(short)
	if err != nil {
		return nil, fmt.Errorf("qos experiment: %w", err)
	}
	rec.Experiments = append(rec.Experiments, qos...)
	return rec, nil
}

func subset(d *pathology.Dataset, tiles int) []pixelbox.Pair {
	if tiles > len(d.Pairs) {
		tiles = len(d.Pairs)
	}
	sub := *d
	sub.Pairs = d.Pairs[:tiles]
	return experiments.FilteredPairs(&sub)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func runFig2(d *pathology.Dataset) {
	header("Fig. 2 — SDBMS query-time decomposition (single core)")
	res, err := experiments.Fig2(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println("\npaper: unoptimized splits across ST_Intersects/intersection/union;")
	fmt.Println("       optimized spends ~90% in Area_Of_Intersection, <6% in index work")
}

func runFig7(d *pathology.Dataset) {
	header("Fig. 7 — GEOS vs PixelBox-CPU-S vs PixelBox")
	res := experiments.Fig7(d)
	cpuS, gpuBox := res.Speedups()
	t := metrics.NewTable("system", "time", "speedup over GEOS")
	t.AddRow("GEOS (sweep overlay)", fmt.Sprintf("%.3fs", res.GEOSSecs), 1.0)
	t.AddRow("PixelBox-CPU-S", fmt.Sprintf("%.3fs", res.PixelBoxCPUSSecs), cpuS)
	t.AddRow("PixelBox (GTX 580 model)", fmt.Sprintf("%.6fs", res.PixelBoxSecs), gpuBox)
	fmt.Print(t.String())
	fmt.Printf("\n%d polygon pairs; paper: 430s / ~290s / 3.6s (1.48x / >100x)\n", res.Pairs)
}

func runFig8(pairs []pixelbox.Pair) {
	header("Fig. 8 — sampling boxes and indirect union vs pixelization only")
	rows := experiments.Fig8(pairs, 5)
	t := metrics.NewTable("SF", "PixelOnly", "PixelBox-NoSep", "PixelBox", "GEOS ref")
	for _, r := range rows {
		t.AddRow(r.ScaleFactor,
			fmt.Sprintf("%.2fms", r.PixelOnlySecs*1e3),
			fmt.Sprintf("%.2fms", r.NoSepSecs*1e3),
			fmt.Sprintf("%.2fms", r.PixelBoxSecs*1e3),
			fmt.Sprintf("%.1fms", r.SweepSecs*1e3))
	}
	fmt.Print(t.String())
	fmt.Println("\npaper: PixelOnly degrades rapidly with SF; PixelBox stays nearly flat;")
	fmt.Println("       at SF1 boxes already cut ~34%, at SF5 PixelBox beats NoSep by ~73%")
}

func runFig9(pairs []pixelbox.Pair) {
	header("Fig. 9 — implementation optimisation ladder (speedup over NoOpt)")
	rows := experiments.Fig9(pairs, []int{1, 3, 5})
	t := metrics.NewTable("SF", "NoOpt", "NBC", "NBC-UR", "NBC-UR-SM")
	for _, r := range rows {
		nbc, nbcur, nbcursm := r.Speedups()
		t.AddRow(r.ScaleFactor, 1.0, nbc, nbcur, nbcursm)
	}
	fmt.Print(t.String())
	fmt.Println("\npaper: 1.14x total at SF1 rising to 1.30x at SF5; UR and SM dominate NBC")
}

func runFig10(pairs []pixelbox.Pair) {
	header("Fig. 10 — sensitivity to pixelization threshold T (block size 64)")
	thresholds := []int{16, 64, 128, 512, 1024, 2048, 4096, 16384, 65536}
	series := experiments.Fig10(pairs, 64, thresholds, []int{1, 2, 3, 4, 5})
	head := []string{"SF \\ T"}
	for _, T := range thresholds {
		head = append(head, fmt.Sprintf("%d", T))
	}
	t := metrics.NewTable(head...)
	for _, s := range series {
		row := []interface{}{s.ScaleFactor}
		for _, p := range s.Points {
			row = append(row, fmt.Sprintf("%.2f", p.Secs*1e3))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	for _, s := range series {
		b := s.Best()
		fmt.Printf("SF%d best: T=%d (%.2fms)\n", s.ScaleFactor, b.Threshold, b.Secs*1e3)
	}
	fmt.Println("\npaper: best T in [n²/8, n²] = [512, 4096] for n=64, sub-optimal at the extremes")
}

func runTable1(d *pathology.Dataset, cal experiments.Calibration) {
	header("Table 1 — execution schemes (speedup over PostGIS-S)")
	res, err := experiments.Table1(d, cal)
	if err != nil {
		log.Fatal(err)
	}
	s, m, p := res.Speedups()
	t := metrics.NewTable("scheme", "time", "speedup")
	t.AddRow("PostGIS-S", fmt.Sprintf("%.3fs", res.PostGISSecs), 1.0)
	t.AddRow("NoPipe-S", fmt.Sprintf("%.3fs", res.NoPipeS.Seconds), s)
	t.AddRow("NoPipe-M", fmt.Sprintf("%.3fs", res.NoPipeM.Seconds), m)
	t.AddRow("Pipelined", fmt.Sprintf("%.3fs", res.Pipelined.Seconds), p)
	fmt.Print(t.String())
	fmt.Printf("\nNoPipe-M CPU utilisation: %.0f%% (paper: ~50%%, capped by uncoordinated GPU use)\n",
		res.NoPipeM.CPUUtilisation*100)
	fmt.Println("paper speedups: 1 / 37.07 / 63.64 / 76.02")
}

func runFig11(cal experiments.Calibration) {
	header("Fig. 11 — dynamic task migration benefit")
	rows, err := experiments.Fig11(cal)
	if err != nil {
		log.Fatal(err)
	}
	t := metrics.NewTable("configuration", "norm. throughput", "to GPU", "to CPU")
	for _, r := range rows {
		t.AddRow(r.Config, r.NormThroughput, r.On.MigratedToGPU, r.On.MigratedToCPU)
	}
	fmt.Print(t.String())
	fmt.Println("\npaper: +50% (Config-I), +40% (Config-II), +14% (Config-III, reversed direction)")
}

// runHybrid is the post-paper experiment for the hybrid co-executing
// aggregator: the same dataset aggregated GPU-only, CPU-only, and on the
// hybrid executor pool. Similarity must be bit-identical across all three;
// only throughput moves.
func runHybrid(d *pathology.Dataset, gpus, cpuAggs int) {
	header(fmt.Sprintf("Hybrid co-execution — %d GPU(s) + %d CPU aggregator(s), work-stealing", gpus, cpuAggs))
	tasks := pipeline.EncodeDataset(d)

	devices := func(n int) []*gpu.Device { return gpu.NewDevices(n, gpu.GTX580()) }
	configs := []struct {
		name string
		cfg  pipeline.Config
	}{
		{"GPU-only (1 device)", pipeline.Config{Devices: devices(1)}},
		{"CPU-only", pipeline.Config{}},
		{fmt.Sprintf("hybrid (%dG+%dC)", gpus, cpuAggs),
			pipeline.Config{Devices: devices(gpus), CPUAggregators: cpuAggs, BatchPairs: 256}},
	}

	t := metrics.NewTable("configuration", "wall", "pairs/s", "pairs GPU", "pairs CPU", "J'")
	var base, hybridSecs float64
	var baseSim float64
	identical := true
	for i, c := range configs {
		res, err := pipeline.Run(tasks, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		secs := res.Stats.WallTime.Seconds()
		if i == 0 {
			base, baseSim = secs, res.Similarity
		} else if res.Similarity != baseSim {
			identical = false
		}
		if i == len(configs)-1 {
			hybridSecs = secs
		}
		t.AddRow(c.name, res.Stats.WallTime.Round(time.Microsecond),
			float64(res.Stats.PairsFiltered)/secs,
			res.Stats.PairsOnGPU, res.Stats.PairsOnCPU,
			fmt.Sprintf("%.6f", res.Similarity))
	}
	fmt.Print(t.String())
	fmt.Printf("\nhybrid speedup over GPU-only: %.2fx; similarity bit-identical: %v\n",
		metrics.Speedup(base, hybridSecs), identical)
}

func runFig12() {
	header("Fig. 12 — SCCG vs PostGIS-M over the 18-dataset corpus")
	rows, err := experiments.Fig12(pathology.Corpus())
	if err != nil {
		log.Fatal(err)
	}
	t := metrics.NewTable("dataset", "tiles", "pairs", "PostGIS-M", "SCCG", "speedup", "J'")
	for _, r := range rows {
		t.AddRow(r.Dataset, r.Tiles, r.Pairs,
			fmt.Sprintf("%.3fs", r.PostGISMSecs),
			fmt.Sprintf("%.3fs", r.SCCGSecs),
			r.Speedup,
			fmt.Sprintf("%.3f", r.Similarity))
	}
	fmt.Print(t.String())
	fmt.Printf("\ngeometric mean speedup: %.1fx (paper: >18x, range 13-44x)\n", experiments.Fig12GeoMean(rows))
}
