package main

// The trace_overhead experiment: the same workload run through two
// schedulers, one recording per-stage spans (the default) and one with
// tracing disabled (sched.Config.NoTrace), pricing the observability layer.
// The record carries both wall times and their ratio; the tracing tax is
// expected to stay under 5% — spans are a handful of timestamped appends
// per shard, dwarfed by parsing and aggregation.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

func traceOverheadRecords(short bool) ([]experimentRecord, error) {
	iters := 10
	if short {
		iters = 3
	}
	spec := pathology.Representative()
	tasks := pipeline.EncodeDataset(pathology.Generate(spec))

	run := func(noTrace bool) (float64, error) {
		s := sched.New(sched.Config{Devices: 1, NoTrace: noTrace})
		defer s.Close()
		// One unmeasured job first, so pipeline warm-up (throughput memory,
		// allocator growth) doesn't land in whichever arm runs first.
		if err := benchRunJob(s, spec.Name, tasks); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := benchRunJob(s, spec.Name, tasks); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}

	tracedSecs, err := run(false)
	if err != nil {
		return nil, err
	}
	untracedSecs, err := run(true)
	if err != nil {
		return nil, err
	}
	return []experimentRecord{{
		Name:     "trace_overhead",
		WallSecs: tracedSecs,
		Values: map[string]float64{
			"jobs":               float64(iters),
			"traced_wall_secs":   tracedSecs,
			"untraced_wall_secs": untracedSecs,
			"overhead_ratio":     tracedSecs/untracedSecs - 1,
		},
	}}, nil
}

func benchRunJob(s *sched.Scheduler, name string, tasks []pipeline.FileTask) error {
	id, err := s.Submit(name, tasks)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		return err
	}
	if st.State != sched.Done {
		return fmt.Errorf("job %s ended %s: %s", id, st.State, st.Error)
	}
	return nil
}
