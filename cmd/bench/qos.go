package main

// QoS isolation benchmark: the PR-10 acceptance experiment. A pool of two
// executor slots (one reserved for interactive work by default) serves a
// stream of interactive probe jobs twice — once on an idle scheduler, once
// while a deep batch backlog floods the general slot — and the record
// captures the p99 interactive queue wait in both phases plus their ratio.
// The QoS machinery must keep that ratio small (the acceptance bound is 5x)
// and must not change any result: the probes' reports are cross-checked
// bit-identical between the phases.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

// pctl returns the p-quantile (0 < p <= 1) of the samples by the
// nearest-rank method; small sample sets make p99 the maximum.
func pctl(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	ix := int(float64(len(s))*p+0.9999) - 1
	if ix < 0 {
		ix = 0
	}
	if ix >= len(s) {
		ix = len(s) - 1
	}
	return s[ix]
}

// qosIsolationRecords runs the interactive-isolation experiment and returns
// its record.
func qosIsolationRecords(short bool) ([]experimentRecord, error) {
	probes, floodJobs, tiles := 8, 16, 2
	if short {
		probes, floodJobs, tiles = 4, 6, 1
	}
	probeSpec := pathology.Representative()
	probeSpec.Name = "bench-qos-probe"
	probeSpec.Seed = 7
	probeSpec.Tiles = tiles
	probeTasks := pipeline.EncodeDataset(pathology.Generate(probeSpec))
	floodSpec := probeSpec
	floodSpec.Name = "bench-qos-flood"
	floodSpec.Seed = 8
	floodTasks := pipeline.EncodeDataset(pathology.Generate(floodSpec))

	// One phase: optionally flood the batch band, then stream interactive
	// probes and collect their queue waits and reports.
	phase := func(flood bool) (waits, sims []float64, err error) {
		sc := sched.New(sched.Config{Devices: 2})
		defer sc.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		if flood {
			for i := 0; i < floodJobs; i++ {
				if _, err := sc.SubmitJob(sched.Tasks(floodTasks),
					sched.JobOpts{Name: "flood", Band: sched.BandBatch}); err != nil {
					return nil, nil, err
				}
			}
		}
		for i := 0; i < probes; i++ {
			id, err := sc.SubmitJob(sched.Tasks(probeTasks),
				sched.JobOpts{Name: "probe", Band: sched.BandInteractive})
			if err != nil {
				return nil, nil, err
			}
			st, err := sc.Wait(ctx, id)
			if err != nil {
				return nil, nil, err
			}
			if st.State != sched.Done {
				return nil, nil, fmt.Errorf("probe %d ended %s: %s", i, st.State, st.Error)
			}
			waits = append(waits, st.Started.Sub(st.Submitted).Seconds())
			sims = append(sims, st.Report.Similarity)
		}
		return waits, sims, nil
	}

	start := time.Now()
	quietWaits, quietSims, err := phase(false)
	if err != nil {
		return nil, fmt.Errorf("unloaded phase: %w", err)
	}
	floodWaits, floodSims, err := phase(true)
	if err != nil {
		return nil, fmt.Errorf("flooded phase: %w", err)
	}

	identical := 1.0
	for i := range quietSims {
		if quietSims[i] != floodSims[i] {
			identical = 0
		}
	}
	quietP99 := pctl(quietWaits, 0.99)
	floodP99 := pctl(floodWaits, 0.99)
	// Floor the unloaded p99 at 1ms: on an idle scheduler the wait is
	// scheduling noise, and a ratio against near-zero would be meaningless.
	floor := quietP99
	if floor < 1e-3 {
		floor = 1e-3
	}

	return []experimentRecord{{
		Name:     "qos_isolation",
		WallSecs: time.Since(start).Seconds(),
		Values: map[string]float64{
			"probes":                   float64(probes),
			"flood_batch_jobs":         float64(floodJobs),
			"interactive_p99_wait_ms":  quietP99 * 1000,
			"flooded_p99_wait_ms":      floodP99 * 1000,
			"p99_wait_ratio":           floodP99 / floor,
			"similarity_bit_identical": identical,
		},
	}}, nil
}
