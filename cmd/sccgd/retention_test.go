package main

// Retention end-to-end acceptance test: with -store-max-bytes and
// -cache-max-entries set, a loop of distinct spec jobs keeps the store and
// the persisted cache under their bounds while every job still completes —
// pinning guarantees no running job's dataset is swept out from under it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/pathology"
	"repro/internal/retention"
)

func bootDaemon(t *testing.T, args []string) (base string, stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, args, func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return base, func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("daemon shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// runSpecJob submits one generated-spec job and polls it to done, returning
// the final state.
func runSpecJob(t *testing.T, base string, seed int64) string {
	t.Helper()
	spec := pathology.DatasetSpec{Name: "retention-e2e", Seed: seed, Tiles: 1}
	body, _ := json.Marshal(map[string]any{"spec": spec})
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	decodeBody(t, resp, &job, http.StatusAccepted)
	deadline := time.Now().Add(60 * time.Second)
	for job.State != "done" && job.State != "failed" && job.State != "canceled" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", job.ID, job.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, &job, http.StatusOK)
	}
	if job.State != "done" {
		t.Fatalf("spec job %s (seed %d) ended %s: %s", job.ID, seed, job.State, job.Error)
	}
	return job.ID
}

// storeBytes sums segment_bytes over GET /datasets.
func storeBytes(t *testing.T, base string) (int64, int) {
	t.Helper()
	var list struct {
		Datasets []struct {
			SegmentBytes int64 `json:"segment_bytes"`
		} `json:"datasets"`
	}
	resp, err := http.Get(base + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list, http.StatusOK)
	var total int64
	for _, d := range list.Datasets {
		total += d.SegmentBytes
	}
	return total, len(list.Datasets)
}

func metricValue(t *testing.T, base, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			return v, true
		}
	}
	return 0, false
}

func TestDaemonRetentionEndToEnd(t *testing.T) {
	dataDir := t.TempDir()

	// Boot 1: measure one spec dataset's footprint so the budget below is
	// sized in datasets, not guessed bytes.
	base, stop := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-devices", "1", "-data-dir", dataDir})
	runSpecJob(t, base, 100)
	unit, n := storeBytes(t, base)
	if n != 1 || unit <= 0 {
		t.Fatalf("measuring boot holds %d datasets / %d bytes, want exactly 1", n, unit)
	}
	stop()

	// Boot 2: a budget that fits two datasets (with headroom for per-seed
	// size variance) but never three, a 2-entry persisted-cache cap, and a
	// fast sweep.
	budget := unit*2 + unit/2
	base, stop = bootDaemon(t, []string{
		"-addr", "127.0.0.1:0",
		"-devices", "1",
		"-data-dir", dataDir,
		"-store-max-bytes", fmt.Sprintf("%d", budget),
		"-cache-max-entries", "2",
		"-store-sweep", "50ms",
	})
	defer stop()

	// A loop of distinct spec jobs, each ingesting a fresh dataset under
	// byte pressure. Every job must complete: its own dataset is pinned for
	// the job's lifetime, so the concurrent sweeps can only take cold ones.
	for seed := int64(101); seed <= 106; seed++ {
		runSpecJob(t, base, seed)
	}

	// The sweeper converges the store under the budget and the persisted
	// cache under its entry cap.
	deadline := time.Now().Add(15 * time.Second)
	for {
		total, _ := storeBytes(t, base)
		persisted, ok := metricValue(t, base, "sccgd_cache_persisted_entries")
		if total <= budget && ok && persisted <= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention never converged: store %d bytes (budget %d), persisted entries %g",
				total, budget, persisted)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The store still serves what survived: a job against a kept dataset
	// works (by ID, cached or recomputed — either is correct).
	var list struct {
		Datasets []struct {
			ID string `json:"id"`
		} `json:"datasets"`
	}
	resp, err := http.Get(base + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list, http.StatusOK)
	if len(list.Datasets) == 0 {
		t.Fatal("retention evicted everything; the budget fits two datasets")
	}
	body, _ := json.Marshal(map[string]any{"dataset_id": list.Datasets[0].ID})
	jresp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK && jresp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(jresp.Body)
		t.Fatalf("job against surviving dataset = %d: %s", jresp.StatusCode, raw)
	}

	// The retention surface is live: counters exported, GC on demand.
	if evicted, ok := metricValue(t, base, "sccgd_retention_datasets_evicted_total"); !ok || evicted < 4 {
		t.Errorf("sccgd_retention_datasets_evicted_total = %g (present %v), want >= 4", evicted, ok)
	}
	gcResp, err := http.Post(base+"/gc", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sw retention.Sweep
	decodeBody(t, gcResp, &sw, http.StatusOK)
	if sw.StoreBytes > budget {
		t.Errorf("post-GC store %d bytes exceeds the %d budget", sw.StoreBytes, budget)
	}
}

// TestRetentionFlagValidation: retention flags demand -data-dir and reject
// malformed sizes, without booting anything.
func TestRetentionFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-store-max-bytes", "1GiB"},
		{"-store-ttl", "1h"},
		{"-cache-max-entries", "4"},
	} {
		if err := run(context.Background(), args, nil); err == nil ||
			!strings.Contains(err.Error(), "-data-dir") {
			t.Errorf("run(%v) = %v, want a -data-dir requirement error", args, err)
		}
	}
	if err := run(context.Background(), []string{"-store-max-bytes", "wat", "-data-dir", t.TempDir()}, nil); err == nil {
		t.Error("malformed -store-max-bytes was accepted")
	}
	if err := run(context.Background(), []string{"-store-ttl", "-5s", "-data-dir", t.TempDir()}, nil); err == nil {
		t.Error("negative -store-ttl was accepted")
	}
}

// FuzzRetentionFlags hardens retention flag parsing: arbitrary flag values
// must never panic, and every accepted combination yields a sane policy
// (non-negative bounds; active exactly when something is bounded).
func FuzzRetentionFlags(f *testing.F) {
	f.Add("512MiB", int64(time.Hour), int64(time.Minute), 16)
	f.Add("", int64(0), int64(0), 0)
	f.Add("1e309", int64(-1), int64(1), -3)
	f.Add("0x41", int64(time.Second), int64(0), 1<<30)
	f.Fuzz(func(t *testing.T, storeMax string, ttlNS, sweepNS int64, cacheMax int) {
		pol, err := retentionPolicy(storeMax, time.Duration(ttlNS), time.Duration(sweepNS), cacheMax)
		if err != nil {
			return
		}
		if pol.MaxBytes < 0 || pol.TTL < 0 || pol.SweepInterval < 0 || pol.CacheMaxEntries < 0 {
			t.Fatalf("retentionPolicy(%q, %d, %d, %d) accepted negative bounds: %+v",
				storeMax, ttlNS, sweepNS, cacheMax, pol)
		}
		wantActive := pol.MaxBytes > 0 || pol.TTL > 0 || pol.CacheMaxEntries > 0
		if pol.Active() != wantActive {
			t.Fatalf("policy %+v reports Active()=%v", pol, pol.Active())
		}
	})
}
