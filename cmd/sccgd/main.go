// Command sccgd is the resident SCCG cross-comparison service: a daemon that
// owns a pool of simulated GPUs plus CPU pipeline workers and serves
// cross-comparison jobs over HTTP (the paper's §4 service generalised to a
// multi-device node with hybrid CPU+GPU aggregation).
//
//	sccgd -addr :8080 -devices 2 -workers 4 -hybrid-cpu
//
// Submit a corpus dataset job and poll it:
//
//	curl -s -X POST localhost:8080/jobs -d '{"corpus":"oligoastroIII_1"}'
//	curl -s localhost:8080/jobs/job-000001
//
// A repeated submission of the same dataset is answered from the LRU result
// cache without touching the device pool. See GET /metrics for counters,
// including per-executor hybrid-aggregator accounting.
//
// With -data-dir the daemon owns a persistent content-addressed dataset
// store: PUT /datasets ingests segmented polygon sets as WKB tile segments,
// jobs can then be submitted by dataset_id, results are cached by content
// hash (and persisted beside the manifests, so a restart answers repeats
// without recompute), and a restart recovers every stored dataset from its
// manifest:
//
//	sccgd -addr :8080 -devices 2 -data-dir /var/lib/sccgd
//
// The store also opens the cross-comparison workload — one algorithm's
// stored results against another's over the same tiles:
//
//	curl -s -X POST localhost:8080/jobs -d '{"dataset_a":"<id1>","dataset_b":"<id2>"}'
//	curl -s -X POST localhost:8080/matrix -d '{"datasets":["<id1>","<id2>","<id3>"]}'
//	curl -s localhost:8080/matrix/mx-000001
//	curl -s localhost:8080/datasets/<id1>/tiles/0
//
// Matrix runs answer progressive queries: "top_k" asks only for the K most
// similar cells (the rest may finish "bounded" with a sound upper bound
// instead of exact), "min_similarity" skips cells provably below a
// threshold, and "set_a"/"set_b" build an oriented rows×columns grid instead
// of a symmetric one. The planner bounds every cell from manifest stats
// before submitting any job, so provably-irrelevant cells cost index reads
// only. Poll with ?wait=1&since=<version> to long-poll the next change, or
// ?stream=1 to stream every change as NDJSON:
//
//	curl -s -X POST localhost:8080/matrix \
//	     -d '{"datasets":["<id1>","<id2>","<id3>"],"top_k":1}'
//	curl -s 'localhost:8080/matrix/mx-000001?wait=1&since=0'
//	curl -sN 'localhost:8080/matrix/mx-000001?stream=1'
//
// Retention bounds keep a long-lived store from leaking disk: a byte budget
// LRU-evicts unpinned datasets (datasets referenced by queued/running jobs
// are pinned and never evicted), a TTL expires unused ones, and the
// persisted result cache is capped by entry count. Evicted datasets cascade
// their cached reports, so a restart never resurrects results for deleted
// data:
//
//	sccgd -data-dir /var/lib/sccgd -store-max-bytes 2GiB -store-ttl 168h \
//	      -cache-max-entries 4096 -store-sweep 1m
//	curl -s -X POST localhost:8080/gc     # sweep now
//	curl -s -X DELETE localhost:8080/cache
//
// With -peers the daemon joins a cluster: any node accepts any request.
// Rendezvous hashing on dataset and cache-key content addresses picks owners;
// a node asked about a dataset it doesn't hold pulls the segment+manifest
// peer-to-peer and digest-verifies every tile before publishing it locally,
// the persisted result cache becomes a cluster-wide read-through, and matrix
// cells route to the node owning their cache key. Unreachable peers back off
// and the node degrades to local computation — clustering never makes a
// single node less capable:
//
//	sccgd -addr :8080 -data-dir /var/lib/sccgd \
//	      -peers host-b:8080,host-c:8080 -advertise host-a:8080
//
// Observability: with -data-dir every job, matrix cell, ingest, and peer
// pull appends to a rotation-bounded JSONL query log (GET /querylog serves
// it filtered; GET /datasets/{id}/heat rolls up per-tile read frequency);
// -querylog-max-bytes bounds it and -querylog-max-bytes off disables it.
// -slow-query 2s warns (with the job's per-stage trace summary) on anything
// slower. In clustered mode traces propagate across nodes — a job that
// pulled a dataset or ran a cell remotely shows the serving peer's spans in
// GET /jobs/{id}/trace — and GET /metrics?cluster=1 serves one federated
// exposition with counters summed across the cluster:
//
//	sccgd -data-dir /var/lib/sccgd -slow-query 2s -querylog-max-bytes 128MiB
//	curl -s 'localhost:8080/querylog?outcome=computed&limit=50'
//	curl -s localhost:8080/datasets/<id1>/heat
//	curl -s 'localhost:8080/metrics?cluster=1'
//
// Multi-tenant QoS: jobs run in three priority bands — interactive (job
// submissions), batch (matrix cells), ingest (spec/corpus generation) —
// under weighted fair sharing with aging, so a K-way matrix flood cannot
// starve an interactive submission. -tenants names token-keyed tenants
// with per-tenant byte, dataset, and queued-job quotas (unknown tokens
// fall into the default tenant); admission control consults the retention
// engine before accepting bytes, evicting synchronously or answering a
// structured 413/429 instead of overshooting -store-max-bytes:
//
//	sccgd -data-dir /var/lib/sccgd -store-max-bytes 2GiB \
//	      -tenants /etc/sccgd/tenants.json \
//	      -band-weights interactive=8,batch=2,ingest=3 \
//	      -reserve-interactive 1 -aging 30s -queue-pin-age 2m
//	curl -s -H 'Authorization: Bearer <token>' -X POST localhost:8080/jobs \
//	     -d '{"dataset_id":"<id>","band":"batch"}'
//	curl -s 'localhost:8080/querylog?tenant=alice'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/retention"
	"repro/internal/sched"
	"repro/internal/tenant"
)

// setupLogger installs the process-wide slog handler selected by -log-format.
// The service's HTTP server logs through slog.Default, so this is the single
// switch between human-readable and machine-parseable daemon logs.
func setupLogger(format string) error {
	switch format {
	case "text", "":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	default:
		return fmt.Errorf("-log-format must be text or json, got %q", format)
	}
	return nil
}

// pprofHandler routes the net/http/pprof pages on an explicit mux, so the
// diagnostics listener exposes profiling and nothing else (the default
// ServeMux — and any handlers other packages hung on it — stays unused).
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// retentionPolicy builds the retention policy from the raw flag values,
// rejecting malformed byte sizes and negative bounds.
func retentionPolicy(storeMax string, ttl, sweep time.Duration, cacheMax int) (retention.Policy, error) {
	var pol retention.Policy
	if storeMax != "" {
		n, err := retention.ParseBytes(storeMax)
		if err != nil {
			return retention.Policy{}, fmt.Errorf("-store-max-bytes: %w", err)
		}
		pol.MaxBytes = n
	}
	if ttl < 0 {
		return retention.Policy{}, errors.New("-store-ttl must not be negative")
	}
	if sweep < 0 {
		return retention.Policy{}, errors.New("-store-sweep must not be negative")
	}
	if cacheMax < 0 {
		return retention.Policy{}, errors.New("-cache-max-entries must not be negative")
	}
	pol.TTL = ttl
	pol.SweepInterval = sweep
	pol.CacheMaxEntries = cacheMax
	return pol, nil
}

// parseBandWeights parses the -band-weights flag: comma-separated
// band=weight pairs over the known band names. Unlisted bands keep their
// defaults; weights must be positive; duplicate bands are rejected.
func parseBandWeights(s string) ([sched.NumBands]int, error) {
	var w [sched.NumBands]int
	if s == "" {
		return w, nil
	}
	seen := make(map[sched.Band]bool)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("-band-weights: %q is not band=weight", part)
		}
		b, err := sched.ParseBand(strings.TrimSpace(name))
		if err != nil {
			return w, fmt.Errorf("-band-weights: %w", err)
		}
		if seen[b] {
			return w, fmt.Errorf("-band-weights: band %s listed twice", b)
		}
		seen[b] = true
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return w, fmt.Errorf("-band-weights: weight for %s must be a positive integer, got %q", b, val)
		}
		w[b] = n
	}
	return w, nil
}

// sweepInterval reports the effective background sweep period for logs.
func sweepInterval(pol retention.Policy) time.Duration {
	if pol.SweepInterval > 0 {
		return pol.SweepInterval
	}
	return time.Minute
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "sccgd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is canceled or the server
// fails. onReady, when non-nil, receives the bound listen address once the
// server is accepting connections — integration tests use it with an
// ephemeral ":0" address.
func run(ctx context.Context, args []string, onReady func(addr string)) error {
	fs := flag.NewFlagSet("sccgd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "HTTP listen address")
		devices   = fs.Int("devices", 1, "simulated GPU pool size (0 = CPU-only)")
		gpusPer   = fs.Int("gpus-per-shard", 0, "GPUs leased per shard pipeline (default 1)")
		hybrid    = fs.Bool("hybrid-cpu", false, "co-execute PixelBox-CPU aggregators with each shard's GPUs")
		workers   = fs.Int("workers", 0, "CPU workers per shard pipeline (default GOMAXPROCS/pipeline default)")
		migration = fs.Bool("migration", false, "enable dynamic task migration inside shard pipelines")
		shards    = fs.Int("max-shards", 0, "max shards per job (default: one per executor slot)")
		queue     = fs.Int("queue", 0, "job queue depth (default 64)")
		cache     = fs.Int("cache", 0, "result cache entries (default 128, -1 disables)")
		dataDir   = fs.String("data-dir", "", "persistent dataset store directory (enables /datasets and jobs by dataset_id)")
		storeMax  = fs.String("store-max-bytes", "", "store byte budget, e.g. 512MiB or 2GB; LRU-evicts unpinned datasets above it (empty = unbounded; needs -data-dir)")
		storeTTL  = fs.Duration("store-ttl", 0, "evict datasets unused for this long (0 = no TTL; needs -data-dir)")
		cacheMax  = fs.Int("cache-max-entries", 0, "persisted result-cache entry bound, LRU-evicted past it (0 = unbounded; needs -data-dir)")
		sweep     = fs.Duration("store-sweep", 0, "retention sweep interval (default 1m when a retention bound is set)")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it off public interfaces)")
		peers     = fs.String("peers", "", "comma-separated peer base URLs; joins a cluster (needs -data-dir and -advertise)")
		advertise = fs.String("advertise", "", "this node's own base URL as peers reach it (required with -peers)")
		qlogMax   = fs.String("querylog-max-bytes", "", "query/access log size bound, e.g. 64MiB; 'off' disables the log (default 64MiB; needs -data-dir)")
		slowQuery = fs.Duration("slow-query", 0, "log a warning with the trace summary for jobs slower than this (0 = disabled)")
		tenantsFl = fs.String("tenants", "", "multi-tenant config: a JSON file path or inline JSON ({\"default\":{...},\"tenants\":[...]}); empty = one unlimited tenant")
		bandWts   = fs.String("band-weights", "", "per-band fair-share weights, e.g. interactive=8,batch=2,ingest=3 (unlisted bands keep defaults)")
		aging     = fs.Duration("aging", 0, "queued-job aging boost: dispatch any job waiting this long ahead of fair share (0 = 30s default, negative disables)")
		reserveIA = fs.Int("reserve-interactive", 0, "device slots reserved for interactive jobs (0 = auto: 1 when >1 slot; negative disables)")
		pinAge    = fs.Duration("queue-pin-age", 2*time.Minute, "cancel QUEUED jobs older than this when their dataset pins block a retention sweep (0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if err := setupLogger(*logFormat); err != nil {
		return err
	}
	logger := slog.Default().With("component", "sccgd")
	pol, err := retentionPolicy(*storeMax, *storeTTL, *sweep, *cacheMax)
	if err != nil {
		return err
	}
	if pol.Active() && *dataDir == "" {
		return errors.New("-store-max-bytes/-store-ttl/-cache-max-entries require -data-dir")
	}
	var qlogBytes int64
	switch *qlogMax {
	case "":
	case "off":
		qlogBytes = -1
	default:
		qlogBytes, err = retention.ParseBytes(*qlogMax)
		if err != nil {
			return fmt.Errorf("-querylog-max-bytes: %w", err)
		}
	}
	if *slowQuery < 0 {
		return errors.New("-slow-query must not be negative")
	}
	if qlogBytes > 0 && *dataDir == "" {
		return errors.New("-querylog-max-bytes requires -data-dir")
	}
	tenantCfg, err := tenant.LoadConfig(*tenantsFl)
	if err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}
	weights, err := parseBandWeights(*bandWts)
	if err != nil {
		return err
	}
	if *pinAge < 0 {
		return errors.New("-queue-pin-age must not be negative")
	}
	var peerList []string
	if *peers != "" {
		if *dataDir == "" {
			return errors.New("-peers requires -data-dir (clustering replicates stored datasets)")
		}
		if *advertise == "" {
			return errors.New("-peers requires -advertise (this node's position in the hash ring)")
		}
		peerList, err = cluster.ParsePeers(*peers)
		if err != nil {
			return err
		}
	}

	var st *sccg.Store
	if *dataDir != "" {
		var err error
		st, err = sccg.OpenStore(*dataDir)
		if err != nil {
			return fmt.Errorf("open data dir: %w", err)
		}
		logger.Info("data dir opened", "dir", *dataDir, "recovered_datasets", st.Len())
		for _, serr := range st.Skipped() {
			logger.Warn("data dir: skipped unrecoverable dataset", "error", serr)
		}
	}

	svc := sccg.NewService(sccg.ServiceOptions{
		Devices:          *devices,
		GPUsPerShard:     *gpusPer,
		HybridCPU:        *hybrid,
		Workers:          *workers,
		Migration:        *migration,
		MaxShards:        *shards,
		QueueDepth:       *queue,
		CacheSize:        *cache,
		Store:            st,
		StoreMaxBytes:    pol.MaxBytes,
		StoreTTL:         pol.TTL,
		CacheMaxEntries:  pol.CacheMaxEntries,
		SweepInterval:    pol.SweepInterval,
		Peers:            peerList,
		Advertise:        *advertise,
		QuerylogMaxBytes: qlogBytes,
		SlowQuery:        *slowQuery,
		Tenants:          tenantCfg,
		BandWeights:      weights,
		AgingBoost:       *aging,
		ReservedSlots:    *reserveIA,
		QueuePinAge:      *pinAge,
	})
	defer svc.Close()
	if tenantCfg.Enabled() {
		logger.Info("multi-tenant QoS active", "tenants", len(tenantCfg.Tenants))
	}
	if pol.Active() {
		logger.Info("retention policy active", "policy", pol.String(), "sweep_interval", sweepInterval(pol).String())
	}
	if len(peerList) > 0 {
		logger.Info("cluster mode", "advertise", *advertise, "peers", len(peerList))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof diagnostics server binds its own listener so profiling is
	// never reachable through the public API address.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		pprofSrv = &http.Server{
			Handler:           pprofHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof server stopped", "error", err)
			}
		}()
		logger.Info("pprof serving", "addr", pln.Addr().String())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Info("serving",
		"addr", ln.Addr().String(),
		"devices", *devices,
		"hybrid_cpu", *hybrid,
		"workers", *workers,
		"migration", *migration,
	)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Warn("shutdown", "error", err)
		}
		if pprofSrv != nil {
			_ = pprofSrv.Shutdown(shutCtx)
		}
		return nil
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
