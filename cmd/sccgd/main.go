// Command sccgd is the resident SCCG cross-comparison service: a daemon that
// owns a pool of simulated GPUs plus CPU pipeline workers and serves
// cross-comparison jobs over HTTP (the paper's §4 service generalised to a
// multi-device node).
//
//	sccgd -addr :8080 -devices 2 -workers 4 -migration
//
// Submit a corpus dataset job and poll it:
//
//	curl -s -X POST localhost:8080/jobs -d '{"corpus":"oligoastroIII_1"}'
//	curl -s localhost:8080/jobs/job-000001
//
// A repeated submission of the same dataset is answered from the LRU result
// cache without touching the device pool. See GET /metrics for counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sccgd: ")

	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		devices   = flag.Int("devices", 1, "simulated GPU pool size (0 = CPU-only)")
		workers   = flag.Int("workers", 0, "CPU workers per shard pipeline (default GOMAXPROCS/pipeline default)")
		migration = flag.Bool("migration", false, "enable dynamic task migration inside shard pipelines")
		shards    = flag.Int("max-shards", 0, "max shards per job (default: one per device)")
		queue     = flag.Int("queue", 0, "job queue depth (default 64)")
		cache     = flag.Int("cache", 0, "result cache entries (default 128, -1 disables)")
	)
	flag.Parse()

	svc := sccg.NewService(sccg.ServiceOptions{
		Devices:    *devices,
		Workers:    *workers,
		Migration:  *migration,
		MaxShards:  *shards,
		QueueDepth: *queue,
		CacheSize:  *cache,
	})
	defer svc.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("serving on %s (devices=%d workers=%d migration=%v)", *addr, *devices, *workers, *migration)

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "sccgd:", err)
			os.Exit(1)
		}
	}
}
