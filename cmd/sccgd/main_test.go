package main

// End-to-end integration test: boot the real daemon (flag parsing, service
// wiring, HTTP server) on an ephemeral port, submit a job over the wire,
// poll it to completion, and check the reported similarity against an
// in-process engine run of the same dataset spec — which must match exactly,
// because hybrid/sharded aggregation is bit-deterministic.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/pathology"
)

func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-devices", "2",
			"-hybrid-cpu",
			"-workers", "2",
		}, func(addr string) { ready <- addr })
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	spec := pathology.DatasetSpec{Name: "e2e", Seed: 20260727, Tiles: 4}

	body, _ := json.Marshal(map[string]any{"spec": spec})
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var job struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Report *struct {
			Similarity   float64 `json:"similarity"`
			Intersecting int     `json:"intersecting"`
			Candidates   int     `json:"candidates"`
			Executors    []struct {
				ID   string `json:"id"`
				Kind string `json:"kind"`
			} `json:"executors"`
		} `json:"report"`
		Error string `json:"error"`
	}
	decodeBody(t, resp, &job, http.StatusAccepted)
	if job.ID == "" {
		t.Fatal("job response carried no ID")
	}

	deadline := time.Now().Add(60 * time.Second)
	for job.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q (error %q)", job.State, job.Error)
		}
		if job.State == "failed" || job.State == "canceled" {
			t.Fatalf("job reached %q: %s", job.State, job.Error)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err = http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			t.Fatalf("GET /jobs/%s: %v", job.ID, err)
		}
		decodeBody(t, resp, &job, http.StatusOK)
	}
	if job.Report == nil {
		t.Fatal("done job has no report")
	}

	// The in-process oracle: same spec (with the same default generation
	// parameters the server fills in), single GPU, no hybrid — similarity
	// must still match bit-for-bit.
	espec := spec
	espec.Gen = pathology.DefaultGenConfig()
	eng := sccg.NewEngine(sccg.Options{})
	want, err := eng.CrossCompareDataset(sccg.EncodeDataset(sccg.GenerateDataset(espec)))
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if job.Report.Similarity != want.Similarity {
		t.Errorf("daemon similarity %.17g != engine %.17g (must be exact)",
			job.Report.Similarity, want.Similarity)
	}
	if job.Report.Intersecting != want.Intersecting || job.Report.Candidates != want.Candidates {
		t.Errorf("daemon counts (%d,%d) != engine (%d,%d)",
			job.Report.Intersecting, job.Report.Candidates, want.Intersecting, want.Candidates)
	}
	if len(job.Report.Executors) == 0 {
		t.Error("report carries no per-executor accounting")
	} else {
		kinds := map[string]bool{}
		for _, e := range job.Report.Executors {
			kinds[e.Kind] = true
		}
		if !kinds["gpu"] || !kinds["cpu"] {
			t.Errorf("hybrid job should report gpu and cpu executors, got %+v", job.Report.Executors)
		}
	}

	// The shared registry surfaces per-executor counters on /metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metricsText), "sccg_executor_pairs_total") {
		t.Errorf("/metrics missing hybrid executor accounting:\n%s", metricsText)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func decodeBody(t *testing.T, resp *http.Response, dst any, wantCode int) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantCode, raw)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
}

// TestDaemonDatasetPersistence is the store's end-to-end acceptance test:
// ingest a dataset over HTTP, restart the daemon against the same -data-dir,
// submit a job by dataset ID against the recovered store, check the
// similarity bit-for-bit against the in-process engine, and check that a
// second submission is served from the content-hash cache without another
// kernel launch.
func TestDaemonDatasetPersistence(t *testing.T) {
	dataDir := t.TempDir()

	boot := func(t *testing.T) (base string, stop func()) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		errCh := make(chan error, 1)
		go func() {
			errCh <- run(ctx, []string{
				"-addr", "127.0.0.1:0",
				"-devices", "1",
				"-data-dir", dataDir,
			}, func(addr string) { ready <- addr })
		}()
		select {
		case addr := <-ready:
			base = "http://" + addr
		case err := <-errCh:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not become ready")
		}
		return base, func() {
			cancel()
			select {
			case err := <-errCh:
				if err != nil {
					t.Fatalf("daemon shutdown: %v", err)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("daemon did not shut down")
			}
		}
	}

	spec := pathology.DatasetSpec{Name: "persist-e2e", Seed: 42, Tiles: 3,
		Gen: pathology.DefaultGenConfig()}
	d := pathology.Generate(spec)

	// Boot 1: ingest the dataset over HTTP.
	base, stop := boot(t)
	payload := make([]map[string]any, len(d.Pairs))
	for i, tp := range d.Pairs {
		payload[i] = map[string]any{
			"image": tp.Image,
			"tile":  tp.Index,
			"raw_a": sccg.EncodePolygons(tp.A),
			"raw_b": sccg.EncodePolygons(tp.B),
		}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/datasets?name=persist-e2e", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT /datasets: %v", err)
	}
	var man struct {
		ID    string `json:"id"`
		Name  string `json:"name"`
		Tiles int    `json:"tiles"`
	}
	decodeBody(t, resp, &man, http.StatusOK)
	if man.ID == "" || man.Tiles != 3 {
		t.Fatalf("ingest response %+v, want 3-tile dataset with content ID", man)
	}
	stop()

	// Boot 2: same data dir, the dataset must be recovered from its
	// manifest; run a job against it by content ID.
	base, stop = boot(t)
	defer stop()

	var stat struct {
		ID string `json:"id"`
	}
	resp, err = http.Get(base + "/datasets/" + man.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &stat, http.StatusOK)
	if stat.ID != man.ID {
		t.Fatalf("recovered dataset stat %+v, want ID %s", stat, man.ID)
	}

	submit := func() (code int, job struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
		Report *struct {
			Similarity   float64 `json:"similarity"`
			Intersecting int     `json:"intersecting"`
		} `json:"report"`
	}) {
		body, _ := json.Marshal(map[string]any{"dataset_id": man.ID})
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /jobs: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		return resp.StatusCode, job
	}

	code, job := submit()
	if code != http.StatusAccepted {
		t.Fatalf("job by dataset_id status = %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for job.State != "done" {
		if job.State == "failed" || job.State == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job state %q: %s", job.State, job.Error)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
	}
	if job.Report == nil {
		t.Fatal("done job has no report")
	}

	// Bit-for-bit against the in-process engine over the same polygons.
	eng := sccg.NewEngine(sccg.Options{})
	want, err := eng.CrossCompareDataset(sccg.EncodeDataset(d))
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if job.Report.Similarity != want.Similarity || job.Report.Intersecting != want.Intersecting {
		t.Errorf("store-backed job (%.17g, %d) != engine (%.17g, %d); must be exact",
			job.Report.Similarity, job.Report.Intersecting, want.Similarity, want.Intersecting)
	}

	// Second submission: a content-hash cache hit, no recompute.
	firstID := job.ID
	code, cached := submit()
	if code != http.StatusOK || !cached.Cached || cached.ID != firstID || cached.State != "done" {
		t.Fatalf("resubmission = %d %+v, want cached done job %s", code, cached, firstID)
	}
}

// TestDaemonMatrixEndToEnd is the cross-comparison subsystem's acceptance
// test: PUT three variant segmentations of the same slide, POST /matrix,
// poll the run to completion, verify every off-diagonal cell bit-for-bit
// against in-process CrossComparePolygons over the same polygons, then
// restart the daemon on the same data dir and check a repeat matrix is
// answered entirely from the persisted cache without submitting any job.
func TestDaemonMatrixEndToEnd(t *testing.T) {
	dataDir := t.TempDir()

	boot := func(t *testing.T) (base string, stop func()) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		errCh := make(chan error, 1)
		go func() {
			errCh <- run(ctx, []string{
				"-addr", "127.0.0.1:0",
				"-devices", "2",
				"-data-dir", dataDir,
			}, func(addr string) { ready <- addr })
		}()
		select {
		case addr := <-ready:
			base = "http://" + addr
		case err := <-errCh:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not become ready")
		}
		return base, func() {
			cancel()
			select {
			case err := <-errCh:
				if err != nil {
					t.Fatalf("daemon shutdown: %v", err)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("daemon did not shut down")
			}
		}
	}

	// Three single-tile variants of the same slide: identical tile keys,
	// different polygons, so the 3×3 matrix compares algorithm outputs and
	// CrossComparePolygons is an exact per-cell oracle.
	var datasets []*pathology.Dataset
	for seed := int64(1); seed <= 3; seed++ {
		spec := pathology.DatasetSpec{Name: "mx-e2e", Seed: seed, Tiles: 1,
			Gen: pathology.DefaultGenConfig()}
		datasets = append(datasets, pathology.Generate(spec))
	}

	base, stop := boot(t)
	ids := make([]string, len(datasets))
	for i, d := range datasets {
		payload := make([]map[string]any, len(d.Pairs))
		for j, tp := range d.Pairs {
			payload[j] = map[string]any{
				"image": tp.Image,
				"tile":  tp.Index,
				"raw_a": sccg.EncodePolygons(tp.A),
				"raw_b": sccg.EncodePolygons(tp.B),
			}
		}
		body, _ := json.Marshal(payload)
		req, _ := http.NewRequest(http.MethodPut, base+"/datasets", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT /datasets: %v", err)
		}
		var man struct {
			ID string `json:"id"`
		}
		decodeBody(t, resp, &man, http.StatusOK)
		ids[i] = man.ID
	}

	type matrixStatus struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Cells [][]struct {
			State      string  `json:"state"`
			Cached     bool    `json:"cached"`
			Error      string  `json:"error"`
			Similarity float64 `json:"similarity"`
			Intersect  int     `json:"intersecting"`
			Candidates int     `json:"candidates"`
		} `json:"cells"`
		Group struct {
			Done     int  `json:"done"`
			Terminal bool `json:"terminal"`
		} `json:"group"`
	}

	runMatrix := func(base string) matrixStatus {
		body, _ := json.Marshal(map[string]any{"datasets": ids})
		resp, err := http.Post(base+"/matrix", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /matrix: %v", err)
		}
		var mst matrixStatus
		decodeBody(t, resp, &mst, http.StatusAccepted)
		deadline := time.Now().Add(60 * time.Second)
		for mst.State == "running" {
			if time.Now().After(deadline) {
				t.Fatalf("matrix %s stuck running", mst.ID)
			}
			time.Sleep(20 * time.Millisecond)
			resp, err := http.Get(base + "/matrix/" + mst.ID)
			if err != nil {
				t.Fatal(err)
			}
			decodeBody(t, resp, &mst, http.StatusOK)
		}
		return mst
	}

	mst := runMatrix(base)
	if mst.State != "done" {
		t.Fatalf("matrix ended %s: %+v", mst.State, mst)
	}
	if mst.Group.Done != 3 || !mst.Group.Terminal {
		t.Errorf("matrix group = %+v, want 3 done members, terminal", mst.Group)
	}

	// Oracle: the engine's CrossComparePolygons over dataset i's set A and
	// dataset j's set B — exactly the cross-cell semantics.
	eng := sccg.NewEngine(sccg.Options{})
	for i := 0; i < 3; i++ {
		if mst.Cells[i][i].State != "self" {
			t.Errorf("diagonal cell [%d][%d] = %q, want self", i, i, mst.Cells[i][i].State)
		}
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			c := mst.Cells[i][j]
			if c.State != "done" {
				t.Fatalf("cell [%d][%d] = %q: %s", i, j, c.State, c.Error)
			}
			if c.Similarity != mst.Cells[j][i].Similarity {
				t.Errorf("matrix asymmetric at [%d][%d]", i, j)
			}
			// Cell (i,j) with i<j was computed as cross(ids[i], ids[j]);
			// the mirror carries the same report.
			a, b := i, j
			if i > j {
				a, b = j, i
			}
			sim, hits, cands := eng.CrossComparePolygons(datasets[a].Pairs[0].A, datasets[b].Pairs[0].B)
			if c.Similarity != sim || c.Intersect != hits || c.Candidates != cands {
				t.Errorf("cell [%d][%d] = (%.17g, %d, %d), CrossComparePolygons = (%.17g, %d, %d); must be exact",
					i, j, c.Similarity, c.Intersect, c.Candidates, sim, hits, cands)
			}
		}
	}
	stop()

	// Restart on the same data dir: the repeat matrix must be answered
	// entirely from the persisted cache — same values, zero jobs submitted.
	base, stop = boot(t)
	defer stop()
	again := runMatrix(base)
	if again.State != "done" {
		t.Fatalf("post-restart matrix ended %s: %+v", again.State, again)
	}
	for i := range again.Cells {
		for j := range again.Cells[i] {
			if i == j {
				continue
			}
			if !again.Cells[i][j].Cached {
				t.Errorf("post-restart cell [%d][%d] not served from cache", i, j)
			}
			if again.Cells[i][j].Similarity != mst.Cells[i][j].Similarity {
				t.Errorf("post-restart cell [%d][%d] similarity drifted", i, j)
			}
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metricsText), "sccgd_jobs_submitted_total 0") {
		t.Errorf("post-restart matrix submitted jobs; metrics:\n%s", grepLine(string(metricsText), "sccgd_jobs_submitted_total"))
	}
}

// TestDaemonTraceEndToEnd is the observability acceptance test: boot the
// daemon with JSON logs and a pprof sidecar listener, run a job to
// completion, and check that (a) the job report carries a stage trace whose
// spans are present, monotone, and consistent with the job's wall time,
// (b) GET /jobs/{id}/trace serves the same trace, (c) /metrics exposes the
// new latency histograms in Prometheus text form, and (d) the pprof listener
// answers on its own address.
func TestDaemonTraceEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-pprof-addr", "127.0.0.1:0",
			"-log-format", "json",
			"-devices", "2",
			"-hybrid-cpu",
			"-workers", "2",
		}, func(addr string) { ready <- addr })
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	wallStart := time.Now()
	spec := pathology.DatasetSpec{Name: "trace-e2e", Seed: 7, Tiles: 4}
	body, _ := json.Marshal(map[string]any{"spec": spec})
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	type traceBlock struct {
		StartedAt string  `json:"started_at"`
		TotalMs   float64 `json:"total_ms"`
		Spans     []struct {
			Name       string  `json:"name"`
			Detail     string  `json:"detail"`
			StartMs    float64 `json:"start_ms"`
			DurationMs float64 `json:"duration_ms"`
		} `json:"spans"`
	}
	var job struct {
		ID    string      `json:"id"`
		State string      `json:"state"`
		Error string      `json:"error"`
		Trace *traceBlock `json:"trace"`
	}
	decodeBody(t, resp, &job, http.StatusAccepted)
	deadline := time.Now().Add(60 * time.Second)
	for job.State != "done" {
		if job.State == "failed" || job.State == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job state %q: %s", job.State, job.Error)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err = http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, &job, http.StatusOK)
	}
	wallElapsed := time.Since(wallStart)

	checkTrace := func(source string, tr *traceBlock) {
		t.Helper()
		if tr == nil {
			t.Fatalf("%s: completed job has no trace block", source)
		}
		if tr.StartedAt == "" {
			t.Errorf("%s: trace has no started_at", source)
		}
		if tr.TotalMs <= 0 {
			t.Errorf("%s: trace total_ms = %v, want > 0", source, tr.TotalMs)
		}
		// The trace total is frozen at the job's terminal transition; it
		// cannot exceed the observed wall time around the submit/poll loop.
		if wall := wallElapsed.Seconds() * 1000; tr.TotalMs > wall+1 {
			t.Errorf("%s: trace total %.3fms exceeds observed wall time %.3fms", source, tr.TotalMs, wall)
		}
		seen := map[string]int{}
		prevStart := -1.0
		for _, sp := range tr.Spans {
			seen[sp.Name]++
			if sp.StartMs < prevStart {
				t.Errorf("%s: span %q start %.3f precedes previous span start %.3f (snapshot must be sorted)",
					source, sp.Name, sp.StartMs, prevStart)
			}
			prevStart = sp.StartMs
			if sp.StartMs < 0 || sp.DurationMs < 0 {
				t.Errorf("%s: span %+v has negative offset or duration", source, sp)
			}
		}
		// Every stage the pipeline ran must have left a span: request
		// materialization, queue wait, sharding, per-shard materialize+execute
		// (2 devices → 2 shards), parse, and the merge.
		for _, want := range []string{"materialize", "queue", "shard", "execute", "parse", "merge"} {
			if seen[want] == 0 {
				t.Errorf("%s: trace has no %q span; spans: %v", source, want, seen)
			}
		}
		if seen["execute"] < 2 {
			t.Errorf("%s: want ≥2 execute spans on a 2-device pool, got %d", source, seen["execute"])
		}
	}
	checkTrace("job report", job.Trace)

	// The dedicated trace endpoint serves the same block.
	resp, err = http.Get(base + "/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var traced struct {
		JobID string      `json:"job_id"`
		State string      `json:"state"`
		Trace *traceBlock `json:"trace"`
	}
	decodeBody(t, resp, &traced, http.StatusOK)
	if traced.JobID != job.ID || traced.State != "done" {
		t.Errorf("GET /jobs/%s/trace = %+v", job.ID, traced)
	}
	checkTrace("trace endpoint", traced.Trace)

	resp, err = http.Get(base + "/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job = %d, want 404", resp.StatusCode)
	}

	// The new latency histograms surface on /metrics in Prometheus text form.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metricsText := string(raw)
	for _, want := range []string{
		`sccgd_http_request_duration_seconds_bucket{route="POST /jobs",status="202",le="+Inf"}`,
		`sccgd_job_duration_seconds_bucket{outcome="done",le="+Inf"} 1`,
		"sccgd_job_queue_wait_seconds_count 1",
		`sccg_executor_batch_seconds_bucket{kind="gpu"`,
		"# TYPE sccgd_job_duration_seconds histogram",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q; got:\n%s", want, grepLine(metricsText, "duration"))
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonPprofListener boots the daemon with a pprof sidecar and checks
// the profiling index answers on the sidecar address but not the API one.
func TestDaemonPprofListener(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// run only reports the API address through onReady, so reserve a loopback
	// port up front and hand it to -pprof-addr to know where the sidecar is.
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	pport := freePort(t)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-pprof-addr", pport,
			"-devices", "0",
		}, func(addr string) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	resp, err := http.Get("http://" + pport + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", resp.StatusCode)
	}

	// The API listener must NOT expose profiling.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("API listener serves /debug/pprof/; profiling must stay on the sidecar")
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// freePort reserves an ephemeral loopback port and releases it for the
// daemon to bind. The tiny race window is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func grepLine(text, substr string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return "(metric absent)"
}

// TestDaemonMatrixProgressive is the progressive-execution acceptance test:
// over a spatially skewed 6-dataset corpus (two clusters of 3, disjoint
// coordinate ranges), a top_k=3 matrix run must skip every provably-empty
// cross-cluster cell, answer the cells it does compute bit-identically to
// the in-process oracle, and surface the true top-3 similarities among its
// exact cells — all through the long-poll wire protocol.
func TestDaemonMatrixProgressive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-devices", "2",
			"-data-dir", t.TempDir(),
		}, func(addr string) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	// Six single-tile variants sharing tile keys: seeds 1-3 at the origin,
	// seeds 4-6 translated to a far cluster, so the 9 cross-cluster cells
	// have provably empty per-tile stat windows (bound 0).
	const shift = 1 << 20
	var datasets []*pathology.Dataset
	for seed := int64(1); seed <= 6; seed++ {
		spec := pathology.DatasetSpec{Name: "mxp-e2e", Seed: seed, Tiles: 1,
			Gen: pathology.DefaultGenConfig()}
		d := pathology.Generate(spec)
		if seed > 3 {
			for _, tp := range d.Pairs {
				for k, p := range tp.A {
					tp.A[k] = p.Translate(shift, shift)
				}
				for k, p := range tp.B {
					tp.B[k] = p.Translate(shift, shift)
				}
			}
		}
		datasets = append(datasets, d)
	}
	ids := make([]string, len(datasets))
	for i, d := range datasets {
		payload := []map[string]any{{
			"image": d.Pairs[0].Image,
			"tile":  d.Pairs[0].Index,
			"raw_a": sccg.EncodePolygons(d.Pairs[0].A),
			"raw_b": sccg.EncodePolygons(d.Pairs[0].B),
		}}
		body, _ := json.Marshal(payload)
		req, _ := http.NewRequest(http.MethodPut, base+"/datasets", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT /datasets: %v", err)
		}
		var man struct {
			ID string `json:"id"`
		}
		decodeBody(t, resp, &man, http.StatusOK)
		ids[i] = man.ID
	}

	type cell struct {
		State      string   `json:"state"`
		Error      string   `json:"error"`
		Similarity float64  `json:"similarity"`
		Intersect  int      `json:"intersecting"`
		Candidates int      `json:"candidates"`
		Bound      *float64 `json:"bound"`
	}
	type matrixStatus struct {
		ID      string   `json:"id"`
		State   string   `json:"state"`
		TopK    int      `json:"top_k"`
		Version int64    `json:"version"`
		Cells   [][]cell `json:"cells"`
		Planned int      `json:"planned_cells"`
		Exact   int      `json:"exact_cells"`
		Skipped int      `json:"skipped_cells"`
		Bounded int      `json:"bounded_cells"`
		PlanTrc any      `json:"plan_trace"`
	}

	body, _ := json.Marshal(map[string]any{"datasets": ids, "top_k": 3, "estimate": true})
	resp, err := http.Post(base+"/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /matrix: %v", err)
	}
	var mst matrixStatus
	decodeBody(t, resp, &mst, http.StatusAccepted)
	if mst.TopK != 3 {
		t.Fatalf("top_k echo = %d", mst.TopK)
	}
	// Follow the run through the long-poll protocol rather than dumb polls.
	deadline := time.Now().Add(60 * time.Second)
	for mst.State == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("matrix %s stuck running", mst.ID)
		}
		resp, err := http.Get(fmt.Sprintf("%s/matrix/%s?wait=1&since=%d", base, mst.ID, mst.Version))
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, &mst, http.StatusOK)
	}
	if mst.State != "done" {
		t.Fatalf("matrix ended %s: %+v", mst.State, mst)
	}
	if mst.Planned != 15 || mst.Exact+mst.Skipped+mst.Bounded != 15 {
		t.Fatalf("planned/exact/skipped/bounded = %d/%d/%d/%d",
			mst.Planned, mst.Exact, mst.Skipped, mst.Bounded)
	}
	// The 9 cross-cluster cells are provably empty and must all be skipped;
	// at least K within-cluster cells were answered exactly.
	if mst.Skipped < 9 {
		t.Errorf("only %d cells skipped; the 9 cross-cluster cells are provably empty", mst.Skipped)
	}
	if mst.Exact < 3 {
		t.Errorf("only %d exact cells for top_k=3", mst.Exact)
	}
	if mst.PlanTrc == nil {
		t.Error("progressive run carries no plan trace")
	}

	// Oracle over the same (translated) polygons: exact cells bit-identical,
	// elided cells' true similarity within their reported bound.
	eng := sccg.NewEngine(sccg.Options{})
	var oracle [15]float64
	var exactSims []float64
	k := 0
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			sim, hits, cands := eng.CrossComparePolygons(datasets[i].Pairs[0].A, datasets[j].Pairs[0].B)
			oracle[k] = sim
			k++
			c := mst.Cells[i][j]
			switch c.State {
			case "done":
				if c.Similarity != sim || c.Intersect != hits || c.Candidates != cands {
					t.Errorf("cell [%d][%d] = (%.17g, %d, %d), oracle = (%.17g, %d, %d); must be exact",
						i, j, c.Similarity, c.Intersect, c.Candidates, sim, hits, cands)
				}
				exactSims = append(exactSims, c.Similarity)
			case "skipped", "bounded":
				if c.Bound == nil {
					t.Fatalf("elided cell [%d][%d] has no bound", i, j)
				}
				if sim > *c.Bound+1e-9 {
					t.Errorf("cell [%d][%d] oracle similarity %v exceeds reported bound %v",
						i, j, sim, *c.Bound)
				}
			default:
				t.Fatalf("cell [%d][%d] = %q: %s", i, j, c.State, c.Error)
			}
		}
	}
	// Every true top-3 similarity is among the exact cells.
	sims := oracle[:]
	sort.Float64s(sims)
	for _, want := range sims[len(sims)-3:] {
		found := false
		for _, got := range exactSims {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("true top-3 similarity %.17g missing from the exact cells %v", want, exactSims)
		}
	}
}
