// Package sccg is the public facade of the SCCG reproduction — "Spatial
// Cross-comparison on CPUs and GPUs" (Wang et al., PVLDB 5(11), 2012).
//
// SCCG cross-compares two sets of segmented micro-anatomic object boundaries
// (rectilinear integer polygons extracted from pathology images) and reports
// their Jaccard similarity J' — the mean ratio of intersection area to union
// area over truly-intersecting polygon pairs. The heavy lifting is done by
// the PixelBox algorithm (internal/pixelbox) running on a simulated GPU
// (internal/gpu) or on CPU workers, orchestrated by a four-stage pipeline
// with dynamic task migration (internal/pipeline).
//
// Quick start:
//
//	eng := sccg.NewEngine(sccg.Options{})
//	report, err := eng.CrossCompareDataset(tasks) // tasks from EncodeDataset
//	fmt.Println(report.Similarity)
//
// See examples/ for runnable scenarios and cmd/ for the CLI tools.
package sccg

import (
	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/jaccard"
	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/pixelbox"
	"repro/internal/rtree"
)

// Re-exported core types, so downstream users work entirely through this
// package.
type (
	// Polygon is a rectilinear integer polygon (a segmented object
	// boundary).
	Polygon = geom.Polygon
	// Point is an integer vertex.
	Point = geom.Point
	// MBR is a minimum bounding rectangle.
	MBR = geom.MBR
	// Pair is one polygon pair to cross-compare.
	Pair = pixelbox.Pair
	// AreaResult is a pair's exact intersection/union pixel counts.
	AreaResult = pixelbox.AreaResult
	// FileTask is one image tile's raw text input to the pipeline.
	FileTask = pipeline.FileTask
	// Report is a pipeline run's outcome.
	Report = pipeline.Result
	// DatasetSpec describes a synthetic dataset.
	DatasetSpec = pathology.DatasetSpec
	// Dataset is a generated dataset.
	Dataset = pathology.Dataset
)

// NewPolygon validates vertices as a simple rectilinear polygon.
func NewPolygon(vertices []Point) (*Polygon, error) { return geom.NewPolygon(vertices) }

// ParsePolygons decodes a polygon text file (one `id POLYGON ((x y,...))`
// per line).
func ParsePolygons(data []byte) ([]*Polygon, error) { return parser.Parse(data) }

// EncodePolygons serialises polygons into the text file format.
func EncodePolygons(polys []*Polygon) []byte { return parser.Encode(polys) }

// Options configures an Engine.
type Options struct {
	// UseGPU aggregates on the simulated GTX 580 (default true). When
	// false, PixelBox-CPU runs on Workers goroutines.
	DisableGPU bool
	// Workers is the CPU worker count for parsing and CPU aggregation;
	// defaults to GOMAXPROCS.
	Workers int
	// Migration enables dynamic task migration between CPUs and the GPU.
	Migration bool
	// PixelBox tunes the kernel (block size, threshold T, variant).
	PixelBox pixelbox.Config
}

// Engine cross-compares polygon result sets.
type Engine struct {
	opts Options
	dev  *gpu.Device
}

// NewEngine creates an engine; with GPU enabled it owns one simulated
// GTX 580 device.
func NewEngine(opts Options) *Engine {
	e := &Engine{opts: opts}
	if !opts.DisableGPU {
		e.dev = gpu.NewDevice(gpu.GTX580())
	}
	return e
}

// Device returns the engine's simulated GPU (nil when disabled), exposing
// busy-time accounting.
func (e *Engine) Device() *gpu.Device { return e.dev }

// CrossCompareDataset runs the full SCCG pipeline — parse, index, filter,
// aggregate — over an image's tile files and returns the similarity report.
func (e *Engine) CrossCompareDataset(tasks []FileTask) (Report, error) {
	return pipeline.Run(tasks, pipeline.Config{
		ParserWorkers: e.opts.Workers,
		Device:        e.dev,
		PixelBox:      e.opts.PixelBox,
		Migration:     e.opts.Migration,
	})
}

// CrossComparePolygons compares two in-memory result sets directly (index,
// filter, aggregate; no text parsing) and returns J' with pair counts.
func (e *Engine) CrossComparePolygons(a, b []*Polygon) (similarity float64, intersecting, candidates int) {
	pairs := MatchPairs(a, b)
	results := e.ComputeAreas(pairs)
	var acc jaccard.Accumulator
	acc.AddResults(results)
	sim, _ := acc.Similarity()
	return sim, acc.Intersecting(), acc.Candidates()
}

// ComputeAreas computes exact intersection/union areas for polygon pairs
// using the configured backend.
func (e *Engine) ComputeAreas(pairs []Pair) []AreaResult {
	if e.dev != nil {
		results, _, _ := pixelbox.RunGPU(e.dev, pairs, e.opts.PixelBox)
		return results
	}
	return pixelbox.RunCPUParallel(pairs, pixelbox.CPUConfig{Workers: e.opts.Workers})
}

// MatchPairs builds Hilbert R-trees over both result sets and returns every
// pair with intersecting MBRs (the filter stage).
func MatchPairs(a, b []*Polygon) []Pair {
	ea := make([]rtree.Entry, len(a))
	for i, p := range a {
		ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	eb := make([]rtree.Entry, len(b))
	for i, p := range b {
		eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	joined, _ := rtree.Join(rtree.Build(ea, rtree.Options{}), rtree.Build(eb, rtree.Options{}), nil)
	pairs := make([]Pair, len(joined))
	for i, pr := range joined {
		pairs[i] = Pair{P: a[pr.A], Q: b[pr.B]}
	}
	return pairs
}

// ExactAreas computes a pair's areas with the exact sweep overlay (the
// GEOS-equivalent reference; bit-identical to PixelBox, far slower).
func ExactAreas(p, q *Polygon) AreaResult {
	inter := clip.IntersectionArea(p, q)
	return AreaResult{Intersection: inter, Union: p.Area() + q.Area() - inter}
}

// GenerateDataset synthesises a dataset from a spec (see Corpus for the
// paper-shaped corpus).
func GenerateDataset(spec DatasetSpec) *Dataset { return pathology.Generate(spec) }

// Corpus returns the 18-dataset synthetic corpus mirroring the paper's
// evaluation data.
func Corpus() []DatasetSpec { return pathology.Corpus() }

// Representative returns the corpus dataset playing the role of the paper's
// oligoastroIII_1.
func Representative() DatasetSpec { return pathology.Representative() }

// EncodeDataset converts a dataset into pipeline input tasks.
func EncodeDataset(d *Dataset) []FileTask { return pipeline.EncodeDataset(d) }
