// Package sccg is the public facade of the SCCG reproduction — "Spatial
// Cross-comparison on CPUs and GPUs" (Wang et al., PVLDB 5(11), 2012).
//
// SCCG cross-compares two sets of segmented micro-anatomic object boundaries
// (rectilinear integer polygons extracted from pathology images) and reports
// their Jaccard similarity J' — the mean ratio of intersection area to union
// area over truly-intersecting polygon pairs. The heavy lifting is done by
// the PixelBox algorithm (internal/pixelbox) running on a simulated GPU
// (internal/gpu) or on CPU workers, orchestrated by a four-stage pipeline
// with dynamic task migration (internal/pipeline).
//
// Quick start:
//
//	eng := sccg.NewEngine(sccg.Options{})
//	report, err := eng.CrossCompareDataset(tasks) // tasks from EncodeDataset
//	fmt.Println(report.Similarity)
//
// See examples/ for runnable scenarios and cmd/ for the CLI tools.
package sccg

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"repro/internal/clip"
	"repro/internal/cluster"
	"repro/internal/compare"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/jaccard"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/pixelbox"
	"repro/internal/retention"
	"repro/internal/rtree"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Re-exported core types, so downstream users work entirely through this
// package.
type (
	// Polygon is a rectilinear integer polygon (a segmented object
	// boundary).
	Polygon = geom.Polygon
	// Point is an integer vertex.
	Point = geom.Point
	// MBR is a minimum bounding rectangle.
	MBR = geom.MBR
	// Pair is one polygon pair to cross-compare.
	Pair = pixelbox.Pair
	// AreaResult is a pair's exact intersection/union pixel counts.
	AreaResult = pixelbox.AreaResult
	// FileTask is one image tile's raw text input to the pipeline.
	FileTask = pipeline.FileTask
	// Report is a pipeline run's outcome.
	Report = pipeline.Result
	// DatasetSpec describes a synthetic dataset.
	DatasetSpec = pathology.DatasetSpec
	// Dataset is a generated dataset.
	Dataset = pathology.Dataset
	// SearchStats counts the R-tree work done by a join or search.
	SearchStats = rtree.SearchStats
	// JobStatus is a job snapshot from the service scheduler.
	JobStatus = sched.JobStatus
	// Store is the persistent content-addressed dataset store.
	Store = store.Store
	// DatasetManifest describes one stored dataset (content ID, per-tile
	// byte layout).
	DatasetManifest = store.Manifest
	// MatrixStatus is a K-way similarity matrix run's snapshot: the K×K
	// cell grid plus the run's scheduler job-group aggregate.
	MatrixStatus = compare.Status
	// MatrixCell is one cell of a matrix status.
	MatrixCell = compare.CellView
	// MatrixQuery is the full matrix request form: symmetric or bipartite
	// axes plus the progressive top-k / min-similarity objectives.
	MatrixQuery = server.MatrixRequest
	// CrossMatch reports how two datasets' tile indexes paired up (matched
	// pairs plus the keys present on only one side).
	CrossMatch = compare.Match
	// RetentionPolicy bounds a service's store and persisted result cache
	// (byte budget, TTL, cache entry cap); see ServiceOptions.
	RetentionPolicy = retention.Policy
	// RetentionSweep reports one retention pass's evictions.
	RetentionSweep = retention.Sweep
)

// NewPolygon validates vertices as a simple rectilinear polygon.
func NewPolygon(vertices []Point) (*Polygon, error) { return geom.NewPolygon(vertices) }

// ParsePolygons decodes a polygon text file (one `id POLYGON ((x y,...))`
// per line).
func ParsePolygons(data []byte) ([]*Polygon, error) { return parser.Parse(data) }

// EncodePolygons serialises polygons into the text file format.
func EncodePolygons(polys []*Polygon) []byte { return parser.Encode(polys) }

// Options configures an Engine.
type Options struct {
	// UseGPU aggregates on the simulated GTX 580 (default true). When
	// false, PixelBox-CPU runs on Workers goroutines.
	DisableGPU bool
	// GPUs is the simulated GPU count the hybrid aggregator co-executes on;
	// defaults to 1 when GPU is enabled. Ignored when DisableGPU is set.
	GPUs int
	// HybridCPU co-executes PixelBox-CPU aggregator workers alongside the
	// GPUs under the cost-model stealing policy. The similarity is
	// bit-identical to a single-device run; only throughput changes.
	HybridCPU bool
	// Workers is the CPU worker count for parsing and CPU aggregation;
	// defaults to GOMAXPROCS.
	Workers int
	// Migration enables dynamic task migration between CPUs and the GPU.
	Migration bool
	// PixelBox tunes the kernel (block size, threshold T, variant).
	PixelBox pixelbox.Config
}

// Engine cross-compares polygon result sets.
type Engine struct {
	opts Options
	devs []*gpu.Device
}

// NewEngine creates an engine; with GPU enabled it owns Options.GPUs
// simulated GTX 580 devices (one by default).
func NewEngine(opts Options) *Engine {
	e := &Engine{opts: opts}
	if !opts.DisableGPU {
		n := opts.GPUs
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			e.devs = append(e.devs, gpu.NewDevice(gpu.GTX580()))
		}
	}
	return e
}

// Device returns the engine's first simulated GPU (nil when disabled),
// exposing busy-time accounting.
func (e *Engine) Device() *gpu.Device {
	if len(e.devs) == 0 {
		return nil
	}
	return e.devs[0]
}

// Devices returns all of the engine's simulated GPUs (empty when disabled).
func (e *Engine) Devices() []*gpu.Device { return e.devs }

// cpuAggregators returns the hybrid CPU executor count implied by the
// options.
func (e *Engine) cpuAggregators() int {
	if !e.opts.HybridCPU {
		return 0
	}
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CrossCompareDataset runs the full SCCG pipeline — parse, index, filter,
// hybrid aggregate — over an image's tile files and returns the similarity
// report.
func (e *Engine) CrossCompareDataset(tasks []FileTask) (Report, error) {
	return pipeline.Run(tasks, pipeline.Config{
		ParserWorkers:  e.opts.Workers,
		Devices:        e.devs,
		CPUAggregators: e.cpuAggregators(),
		CPU:            pixelbox.CPUConfig{Workers: e.opts.Workers},
		PixelBox:       e.opts.PixelBox,
		Migration:      e.opts.Migration,
	})
}

// CrossComparePolygons compares two in-memory result sets directly (index,
// filter, aggregate; no text parsing) and returns J' with pair counts.
func (e *Engine) CrossComparePolygons(a, b []*Polygon) (similarity float64, intersecting, candidates int) {
	sim, hits, cands, _ := e.CrossComparePolygonsErr(a, b)
	return sim, hits, cands
}

// CrossComparePolygonsErr is the error-reporting variant of
// CrossComparePolygons: it rejects nil polygons instead of panicking deep in
// the aggregation kernel. The service's synchronous /compare endpoint runs
// through this path.
func (e *Engine) CrossComparePolygonsErr(a, b []*Polygon) (similarity float64, intersecting, candidates int, err error) {
	pairs, _, err := MatchPairsErr(a, b)
	if err != nil {
		return 0, 0, 0, err
	}
	results, err := e.ComputeAreasErr(pairs)
	if err != nil {
		return 0, 0, 0, err
	}
	var acc jaccard.Accumulator
	acc.AddResults(results)
	sim, _ := acc.Similarity()
	return sim, acc.Intersecting(), acc.Candidates(), nil
}

// ComputeAreas computes exact intersection/union areas for polygon pairs
// using the configured backend. Invalid input (a nil polygon in a pair) is
// silently tolerated here for backward compatibility; new code should call
// ComputeAreasErr.
func (e *Engine) ComputeAreas(pairs []Pair) []AreaResult {
	results, err := e.ComputeAreasErr(pairs)
	if err != nil {
		return nil
	}
	return results
}

// ComputeAreasErr is the validating variant of ComputeAreas: it rejects
// pairs containing nil polygons up front rather than crashing inside the
// kernel.
func (e *Engine) ComputeAreasErr(pairs []Pair) ([]AreaResult, error) {
	for i, pr := range pairs {
		if pr.P == nil || pr.Q == nil {
			return nil, fmt.Errorf("sccg: pair %d contains a nil polygon", i)
		}
	}
	if dev := e.Device(); dev != nil {
		results, _, _ := pixelbox.RunGPU(dev, pairs, e.opts.PixelBox)
		return results, nil
	}
	return pixelbox.RunCPUParallel(pairs, pixelbox.CPUConfig{Workers: e.opts.Workers}), nil
}

// MatchPairs builds Hilbert R-trees over both result sets and returns every
// pair with intersecting MBRs (the filter stage). Join statistics and input
// validation are discarded; new code should call MatchPairsErr.
func MatchPairs(a, b []*Polygon) []Pair {
	pairs, _, err := MatchPairsErr(a, b)
	if err != nil {
		return nil
	}
	return pairs
}

// MatchPairsErr is the validating variant of MatchPairs: it rejects nil
// polygons and returns the join's R-tree search statistics instead of
// dropping them.
func MatchPairsErr(a, b []*Polygon) ([]Pair, SearchStats, error) {
	ea := make([]rtree.Entry, len(a))
	for i, p := range a {
		if p == nil {
			return nil, SearchStats{}, fmt.Errorf("sccg: result set A polygon %d is nil", i)
		}
		ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	eb := make([]rtree.Entry, len(b))
	for i, p := range b {
		if p == nil {
			return nil, SearchStats{}, fmt.Errorf("sccg: result set B polygon %d is nil", i)
		}
		eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	joined, stats := rtree.Join(rtree.Build(ea, rtree.Options{}), rtree.Build(eb, rtree.Options{}), nil)
	pairs := make([]Pair, len(joined))
	for i, pr := range joined {
		pairs[i] = Pair{P: a[pr.A], Q: b[pr.B]}
	}
	return pairs, stats, nil
}

// ExactAreas computes a pair's areas with the exact sweep overlay (the
// GEOS-equivalent reference; bit-identical to PixelBox, far slower).
func ExactAreas(p, q *Polygon) AreaResult {
	inter := clip.IntersectionArea(p, q)
	return AreaResult{Intersection: inter, Union: p.Area() + q.Area() - inter}
}

// GenerateDataset synthesises a dataset from a spec (see Corpus for the
// paper-shaped corpus).
func GenerateDataset(spec DatasetSpec) *Dataset { return pathology.Generate(spec) }

// Corpus returns the 18-dataset synthetic corpus mirroring the paper's
// evaluation data.
func Corpus() []DatasetSpec { return pathology.Corpus() }

// Representative returns the corpus dataset playing the role of the paper's
// oligoastroIII_1.
func Representative() DatasetSpec { return pathology.Representative() }

// EncodeDataset converts a dataset into pipeline input tasks.
func EncodeDataset(d *Dataset) []FileTask { return pipeline.EncodeDataset(d) }

// OpenStore opens (creating if needed) the persistent dataset store rooted
// at dir, recovering previously ingested datasets by re-scanning their
// manifests.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// IngestDataset persists a generated dataset into the store and returns its
// content-addressed manifest. Ingestion is idempotent: identical polygon
// content maps to the same dataset ID.
func IngestDataset(st *Store, d *Dataset) (*DatasetManifest, error) {
	return st.IngestDataset(d)
}

// ServiceOptions configures the resident cross-comparison job service.
type ServiceOptions struct {
	// Devices is the simulated-GPU pool size; 0 runs CPU-only.
	Devices int
	// GPUsPerShard is how many pool GPUs one shard's hybrid pipeline drives
	// concurrently; 0 selects the scheduler default of 1.
	GPUsPerShard int
	// HybridCPU co-executes PixelBox-CPU aggregators alongside each shard's
	// GPUs (work-stealing hybrid aggregation).
	HybridCPU bool
	// Workers is each shard pipeline's CPU worker count.
	Workers int
	// Migration enables dynamic task migration inside shard pipelines.
	Migration bool
	// PixelBox tunes the kernel.
	PixelBox pixelbox.Config
	// MaxShards caps shards per job; 0 means one per executor slot.
	MaxShards int
	// QueueDepth bounds the job queue; 0 selects the scheduler default.
	QueueDepth int
	// CacheSize is the HTTP result cache capacity; 0 selects the server
	// default, negative disables caching.
	CacheSize int
	// Store, when set, backs the /datasets endpoints, jobs by dataset ID,
	// cross-dataset jobs, matrix runs, and content-hash result caching —
	// including the persisted report cache under the store directory (see
	// OpenStore).
	Store *Store
	// MatrixConcurrency bounds in-flight cells per matrix run; 0 selects
	// the server default of 4.
	MatrixConcurrency int
	// StoreMaxBytes caps the store's total segment bytes: the retention
	// sweeper evicts least-recently-used unpinned datasets above it
	// (datasets referenced by queued/running jobs are pinned and never
	// evicted). 0 means unbounded. Requires Store.
	StoreMaxBytes int64
	// StoreTTL evicts datasets unused (no job, cross, matrix cell, or tile
	// read) for longer than this. 0 disables TTL eviction. Requires Store.
	StoreTTL time.Duration
	// CacheMaxEntries bounds the persisted result-cache entries kept on
	// disk, LRU-evicted past the cap. 0 means unbounded. Requires Store.
	CacheMaxEntries int
	// SweepInterval is the background retention sweep period; 0 selects the
	// default of one minute. The sweeper only runs when one of the bounds
	// above is set; Service.Close stops it.
	SweepInterval time.Duration
	// Peers, when non-empty, puts the service in clustered mode: datasets
	// missing locally are pulled peer-to-peer (digest-verified on arrival),
	// the persisted result cache becomes a cluster-wide read-through, and
	// matrix cells route to the node that owns their cache key under
	// rendezvous hashing. Each entry is a peer base URL (host:port accepted).
	// Requires Store and Advertise.
	Peers []string
	// Advertise is this node's own base URL as peers reach it; it anchors the
	// node's position in the rendezvous hash ring. Required with Peers.
	Advertise string
	// QuerylogMaxBytes bounds the persisted query/access log kept under the
	// store directory. 0 selects the 64 MiB default; negative disables the
	// log. Requires Store.
	QuerylogMaxBytes int64
	// SlowQuery, when positive, logs a structured warning (with the job's
	// trace summary) for any job slower than this threshold.
	SlowQuery time.Duration
	// NoTrace disables per-job span recording; only for measuring tracing's
	// own overhead (cmd/bench trace_overhead).
	NoTrace bool
	// Tenants is the multi-tenant QoS configuration (token-keyed tenants
	// with byte/dataset/queued-job quotas); the zero value runs everything
	// as one unlimited default tenant.
	Tenants tenant.Config
	// BandWeights overrides the per-band fair-share weights of the
	// scheduler's priority queues; zero entries select the defaults
	// (interactive 8, batch 2, ingest 3).
	BandWeights [sched.NumBands]int
	// AgingBoost is how long a queued job may wait before it is dispatched
	// ahead of fair share; 0 selects the 30s default, negative disables.
	AgingBoost time.Duration
	// ReservedSlots reserves device slots for interactive jobs; 0
	// auto-reserves one when more than one slot exists, negative disables.
	ReservedSlots int
	// QueuePinAge is the pin-aware queue-aging threshold: queued jobs older
	// than this may be canceled when their dataset pins block a retention
	// sweep from meeting its byte budget. 0 disables.
	QueuePinAge time.Duration
}

// Service is the resident SCCG job service (paper §4 generalised to a
// device pool): a multi-device scheduler plus its HTTP API. It is what
// cmd/sccgd serves.
type Service struct {
	sched   *sched.Scheduler
	store   *Store
	srv     *server.Server
	cluster *cluster.Node
}

// NewService builds a running scheduler and its HTTP server. Close the
// service when done.
func NewService(opts ServiceOptions) *Service {
	// One registry is shared by the scheduler's shard pipelines (per-executor
	// accounting) and the HTTP server (request counters), so GET /metrics
	// exposes both.
	reg := metrics.NewRegistry()
	sc := sched.New(sched.Config{
		Devices:      opts.Devices,
		GPUsPerShard: opts.GPUsPerShard,
		HybridCPU:    opts.HybridCPU,
		Workers:      opts.Workers,
		Migration:    opts.Migration,
		PixelBox:     opts.PixelBox,
		MaxShards:    opts.MaxShards,
		QueueDepth:   opts.QueueDepth,
		Registry:     reg,
		NoTrace:      opts.NoTrace,
		BandWeights:  opts.BandWeights,
		AgingBoost:   opts.AgingBoost,
		// The scheduler enforces per-tenant queued-job quotas atomically at
		// enqueue; the closure keeps the scheduler tenant-config-agnostic.
		ReservedSlots:    opts.ReservedSlots,
		TenantQueueLimit: opts.Tenants.QueueLimit,
	})
	// The synchronous /compare endpoint runs on a CPU engine through the
	// facade's error-returning path, leaving pool devices to the job queue.
	cmpEng := NewEngine(Options{DisableGPU: true, Workers: opts.Workers})
	compareFn := func(rawA, rawB []byte) (server.CompareResult, error) {
		a, err := parser.Parse(rawA)
		if err != nil {
			return server.CompareResult{}, fmt.Errorf("result set A: %w", err)
		}
		b, err := parser.Parse(rawB)
		if err != nil {
			return server.CompareResult{}, fmt.Errorf("result set B: %w", err)
		}
		sim, hits, cands, err := cmpEng.CrossComparePolygonsErr(a, b)
		if err != nil {
			return server.CompareResult{}, err
		}
		return server.CompareResult{Similarity: sim, Intersecting: hits, Candidates: cands}, nil
	}
	// Clustered mode: the peer node owns placement, peer-pull, and cluster
	// metrics. A bad peer configuration degrades to single-node operation
	// rather than failing the service.
	var node *cluster.Node
	if len(opts.Peers) > 0 && opts.Store != nil {
		n, err := cluster.New(cluster.Config{
			Self:     opts.Advertise,
			Peers:    opts.Peers,
			Store:    opts.Store,
			Registry: reg,
		})
		if err != nil {
			slog.Warn("cluster disabled", "err", err)
		} else {
			node = n
		}
	}
	return &Service{
		sched:   sc,
		store:   opts.Store,
		cluster: node,
		srv: server.New(sc, server.Options{
			CacheSize:         opts.CacheSize,
			Compare:           compareFn,
			Registry:          reg,
			Store:             opts.Store,
			MatrixConcurrency: opts.MatrixConcurrency,
			Cluster:           node,
			QuerylogMaxBytes:  opts.QuerylogMaxBytes,
			SlowQuery:         opts.SlowQuery,
			Tenants:           opts.Tenants,
			QueuePinAge:       opts.QueuePinAge,
			Retention: retention.Policy{
				MaxBytes:        opts.StoreMaxBytes,
				TTL:             opts.StoreTTL,
				CacheMaxEntries: opts.CacheMaxEntries,
				SweepInterval:   opts.SweepInterval,
			},
		}),
	}
}

// Handler returns the service's HTTP routing table (POST /jobs,
// GET /jobs/{id}, GET /jobs, POST /compare, GET /metrics, GET /healthz).
func (s *Service) Handler() http.Handler { return s.srv.Handler() }

// Scheduler exposes the underlying job scheduler for in-process use.
func (s *Service) Scheduler() *sched.Scheduler { return s.sched }

// SubmitDataset queues a corpus-style dataset job directly, bypassing HTTP.
func (s *Service) SubmitDataset(spec DatasetSpec) (string, error) {
	return s.sched.SubmitDataset(spec)
}

// Store exposes the service's dataset store (nil when none is configured).
func (s *Service) Store() *Store { return s.store }

// SubmitStored queues a job over a stored dataset by content ID, bypassing
// HTTP. Shards materialize lazily from the store's tile segments.
func (s *Service) SubmitStored(datasetID string) (string, error) {
	if s.store == nil {
		return "", fmt.Errorf("sccg: service has no dataset store")
	}
	ds, err := s.store.OpenDataset(datasetID)
	if err != nil {
		return "", err
	}
	return s.sched.SubmitSource(ds.Manifest().DisplayName(), ds.Source())
}

// CompareStored queues a cross-dataset comparison job — dataset idA's set-A
// polygons against dataset idB's set-B polygons over their shared tile keys
// — bypassing HTTP (and, like SubmitStored, the result cache). The match
// report says which tiles paired and which exist on only one side; with
// idA == idB the job is exactly the dataset's own embedded comparison.
func (s *Service) CompareStored(idA, idB string) (string, CrossMatch, error) {
	if s.store == nil {
		return "", CrossMatch{}, fmt.Errorf("sccg: service has no dataset store")
	}
	name, src, match, _, err := compare.OpenPair(s.store, idA, idB)
	if err != nil {
		return "", match, fmt.Errorf("sccg: %w", err)
	}
	id, err := s.sched.SubmitSource(name, src)
	return id, match, err
}

// SubmitMatrix starts a K-way similarity matrix run over stored dataset
// IDs: all K·(K−1)/2 pairwise cells as one cancellable job group,
// deduplicated through the service's result cache. Poll with Matrix.
func (s *Service) SubmitMatrix(ids []string) (string, error) {
	return s.srv.SubmitMatrix(ids, "")
}

// SubmitMatrixQuery starts a matrix run from the full request form: a
// symmetric run over Datasets or a bipartite SetA×SetB run, optionally
// progressive — TopK asks only for the K highest-similarity cells,
// MinSimilarity skips cells provably below it (elided cells finish
// "bounded"/"skipped" with a sound similarity upper bound instead of an
// exact report), Estimate refines the computation order with Monte-Carlo
// sampling. Poll with Matrix or long-poll with WaitMatrix.
func (s *Service) SubmitMatrixQuery(req MatrixQuery) (string, error) {
	return s.srv.SubmitMatrixRequest(req)
}

// Matrix returns a matrix run's status snapshot by ID.
func (s *Service) Matrix(id string) (MatrixStatus, bool) { return s.srv.Matrix(id) }

// WaitMatrix blocks until the run's status version exceeds since (pass the
// last snapshot's Version; 0 waits for anything past the plan phase), the
// run finishes, or ctx expires, and returns the freshest snapshot.
func (s *Service) WaitMatrix(ctx context.Context, id string, since int64) (MatrixStatus, bool) {
	return s.srv.WaitMatrix(ctx, id, since)
}

// CancelMatrix cancels a matrix run and its remaining member jobs.
func (s *Service) CancelMatrix(id string) error { return s.srv.CancelMatrix(id) }

// Job returns a job snapshot by ID.
func (s *Service) Job(id string) (JobStatus, bool) { return s.sched.Job(id) }

// GC runs one retention sweep immediately — evicting TTL-expired and
// over-budget unpinned datasets, cascading their cached reports, and
// enforcing the persisted-cache entry bound — and reports what it evicted.
// It fails when the service has no dataset store.
func (s *Service) GC() (RetentionSweep, error) { return s.srv.GC() }

// Close stops matrix orchestration and the scheduler (queued jobs are
// canceled), then drains background report-persist writes — the scheduler
// must close first so every job the persisters wait on reaches a terminal
// state.
func (s *Service) Close() {
	s.srv.Close()
	if s.cluster != nil {
		s.cluster.Close()
	}
	s.sched.Close()
	s.srv.Drain()
}

// ErrServiceClosed is returned by scheduler submissions after Close.
var ErrServiceClosed = sched.ErrClosed
